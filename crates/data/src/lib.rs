//! # rpm-data — datasets for the RPM reproduction
//!
//! The paper evaluates on the UCR archive, rotated variants of five of its
//! shape datasets, and an ICU arterial-blood-pressure alarm corpus from
//! MIMIC II. None of those corpora can be redistributed here, so this crate
//! implements *generative stand-ins*: for each dataset family used in the
//! evaluation we implement a synthetic generator reproducing the family's
//! class structure (localized discriminative subpatterns, warping, noise),
//! emitted in the same shapes the paper reports (classes / train / test /
//! length, scaled to laptop budgets). The relative comparisons the paper
//! makes — which classifier wins where, and by how much — exercise the same
//! code paths on these generators. See `DESIGN.md` §3 for the substitution
//! rationale.
//!
//! * [`cbf`] — Cylinder-Bell-Funnel (Saito's classic synthetic ruleset,
//!   Fig. 2 of the paper),
//! * [`control`] — control charts, two-patterns, Trace-like transients,
//! * [`ecg`] — ECG-beat families (ECGFiveDays-like),
//! * [`motion`] — GunPoint-like motion profiles,
//! * [`shapes`] — radial shape profiles (leaf/face families; the rotation
//!   case study of §6.1 uses these),
//! * [`spectra`] — spectrography families (Coffee-like),
//! * [`misc`] — ItalyPowerDemand-like and Wafer-like families,
//! * [`sensor`] — MoteStrain / Lightning2 / SonyAIBO-like sensor traces,
//! * [`abp`] — the §6.2 medical-alarm stand-in: an arterial blood pressure
//!   waveform simulator with normal and alarm regimes,
//! * [`ucr`] — UCR file format I/O (label-first delimited rows),
//! * [`registry`] — the named evaluation suite with paper-aligned shapes,
//! * [`corrupt`] — the rotation corruption of §6.1.

pub mod abp;
pub mod cbf;
pub mod control;
pub mod corrupt;
pub mod ecg;
pub mod misc;
pub mod motion;
pub mod registry;
pub mod sensor;
pub mod shapes;
pub mod spectra;
pub mod synth;
pub mod ucr;

pub use corrupt::{dropout_dataset, interpolate_gaps, rotate_dataset};
pub use registry::{generate, suite, DatasetSpec};
pub use ucr::{read_ucr_file_lenient, read_ucr_lenient, Quarantine};
