//! ECG-beat synthetics (ECGFiveDays-like).
//!
//! Each instance is a single heartbeat built from Gaussian waves for the
//! P wave, QRS complex, and T wave. The two classes share gross morphology
//! but differ in localized features (T-wave amplitude and an ST-segment
//! offset) — exactly the "visually similar, locally discriminable"
//! structure of the paper's Fig. 5.

use crate::synth::{add_gaussian_peak, add_noise, rand_f64};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpm_ts::Dataset;

/// Generates one beat of the given class (0 or 1).
pub fn ecg_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 2, "ECG family has classes 0..2");
    let mut s = vec![0.0; length];
    let l = length as f64;
    let jitter = rand_f64(rng, -0.02, 0.02) * l;

    // P wave.
    add_gaussian_peak(&mut s, 0.20 * l + jitter, 0.025 * l, 0.25);
    // QRS complex: Q dip, R spike, S dip.
    add_gaussian_peak(&mut s, 0.38 * l + jitter, 0.012 * l, -0.3);
    add_gaussian_peak(&mut s, 0.42 * l + jitter, 0.012 * l, 2.5);
    add_gaussian_peak(&mut s, 0.46 * l + jitter, 0.012 * l, -0.6);
    // T wave: class-dependent amplitude (class 1 has a depressed,
    // widened T — the discriminative feature).
    let (t_amp, t_width) = if class == 0 {
        (0.7, 0.04 * l)
    } else {
        (0.25, 0.065 * l)
    };
    add_gaussian_peak(&mut s, 0.68 * l + jitter, t_width, t_amp);
    // ST segment offset for class 1 (mild depression).
    if class == 1 {
        for (i, v) in s.iter_mut().enumerate() {
            let x = i as f64 / l;
            if (0.48..0.62).contains(&x) {
                *v -= 0.15;
            }
        }
    }
    add_noise(&mut s, 0.05, rng);
    s
}

/// Balanced ECGFiveDays-like dataset.
pub fn generate(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("ECGFiveDays", Vec::new(), Vec::new());
    for class in 0..2 {
        for _ in 0..n_per_class {
            d.push(ecg_instance(class, length, &mut rng), class);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_spike_dominates() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = ecg_instance(0, 136, &mut rng);
        let (argmax, _) = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let expected = (0.42f64 * 136.0) as usize;
        assert!(
            argmax.abs_diff(expected) <= 6,
            "R peak at {argmax}, expected near {expected}"
        );
    }

    #[test]
    fn t_wave_separates_classes_in_expectation() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100;
        let len = 136;
        let t_region = |s: &[f64]| {
            s[(0.64 * len as f64) as usize..(0.72 * len as f64) as usize]
                .iter()
                .sum::<f64>()
        };
        let mut m0 = 0.0;
        let mut m1 = 0.0;
        for _ in 0..n {
            m0 += t_region(&ecg_instance(0, len, &mut rng)) / n as f64;
            m1 += t_region(&ecg_instance(1, len, &mut rng)) / n as f64;
        }
        assert!(m0 > m1 + 1.0, "class 0 T-wave bigger: {m0} vs {m1}");
    }

    #[test]
    fn dataset_shape_and_determinism() {
        let d = generate(12, 136, 3);
        assert_eq!(d.len(), 24);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d, generate(12, 136, 3));
    }
}
