//! Control-chart style synthetics: SyntheticControl, TwoPatterns and a
//! Trace-like transient family.

use crate::synth::{add_noise, rand_f64, rand_int, randn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpm_ts::Dataset;

/// The six classic control-chart classes (Alcock & Manolopoulos):
/// normal, cyclic, increasing trend, decreasing trend, upward shift,
/// downward shift.
pub fn synthetic_control_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 6, "synthetic control has classes 0..6");
    let base = 30.0;
    let mut s: Vec<f64> = (0..length).map(|_| base + 2.0 * randn(rng)).collect();
    match class {
        0 => {}
        1 => {
            // Cyclic: add a sinusoid of random amplitude/period.
            let amp = rand_f64(rng, 10.0, 15.0);
            let period = rand_f64(rng, 10.0, 15.0);
            for (t, v) in s.iter_mut().enumerate() {
                *v += amp * (std::f64::consts::TAU * t as f64 / period).sin();
            }
        }
        2 | 3 => {
            // Trends.
            let slope = rand_f64(rng, 0.2, 0.5) * if class == 2 { 1.0 } else { -1.0 };
            for (t, v) in s.iter_mut().enumerate() {
                *v += slope * t as f64;
            }
        }
        _ => {
            // Shifts at a random changepoint.
            let at = rand_int(rng, length / 3, (2 * length) / 3);
            let mag = rand_f64(rng, 7.5, 20.0) * if class == 4 { 1.0 } else { -1.0 };
            for v in s.iter_mut().skip(at) {
                *v += mag;
            }
        }
    }
    s
}

/// Balanced SyntheticControl-like dataset.
pub fn synthetic_control(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("SyntheticControl", Vec::new(), Vec::new());
    for class in 0..6 {
        for _ in 0..n_per_class {
            d.push(synthetic_control_instance(class, length, &mut rng), class);
        }
    }
    d
}

/// TwoPatterns: two step events (each up-down `u` or down-up `d`) placed at
/// random positions; the class is the ordered pair (uu / ud / du / dd).
pub fn two_patterns_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 4, "two-patterns has classes 0..4");
    let first_up = class / 2 == 0;
    let second_up = class.is_multiple_of(2);
    let mut s = vec![0.0; length];
    let w = length / 8; // event width
    let p1 = rand_int(rng, w, length / 2 - 2 * w);
    let p2 = rand_int(rng, length / 2 + w, length - 2 * w);
    for (p, up) in [(p1, first_up), (p2, second_up)] {
        for (i, v) in s.iter_mut().enumerate().skip(p).take(2 * w) {
            let phase = i - p;
            let lvl = if phase < w { 1.0 } else { -1.0 };
            *v += if up { lvl * 5.0 } else { -lvl * 5.0 };
        }
    }
    add_noise(&mut s, 1.0, rng);
    s
}

/// Balanced TwoPatterns-like dataset.
pub fn two_patterns(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("TwoPatterns", Vec::new(), Vec::new());
    for class in 0..4 {
        for _ in 0..n_per_class {
            d.push(two_patterns_instance(class, length, &mut rng), class);
        }
    }
    d
}

/// Trace-like transients (4 classes): a baseline with an oscillatory burst
/// and/or a level step, mimicking the nuclear-plant transients of the UCR
/// Trace dataset.
pub fn trace_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 4, "trace has classes 0..4");
    let has_burst = class & 1 == 1;
    let has_step = class & 2 == 2;
    let mut s = vec![0.0; length];
    if has_step {
        let at = rand_int(rng, length / 3, length / 2);
        let ramp = length / 10;
        for (i, v) in s.iter_mut().enumerate() {
            if i >= at + ramp {
                *v += 3.0;
            } else if i >= at {
                *v += 3.0 * (i - at) as f64 / ramp as f64;
            }
        }
    }
    if has_burst {
        let at = rand_int(rng, length / 10, length / 4);
        let dur = length / 5;
        for (i, v) in s.iter_mut().enumerate().skip(at).take(dur) {
            let phase = (i - at) as f64 / dur as f64;
            let envelope = (std::f64::consts::PI * phase).sin();
            *v += 2.0 * envelope * (std::f64::consts::TAU * 4.0 * phase).sin();
        }
    }
    add_noise(&mut s, 0.1, rng);
    s
}

/// Balanced Trace-like dataset.
pub fn trace(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("Trace", Vec::new(), Vec::new());
    for class in 0..4 {
        for _ in 0..n_per_class {
            d.push(trace_instance(class, length, &mut rng), class);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_trends_have_signed_slopes() {
        let mut rng = StdRng::seed_from_u64(5);
        for (class, sign) in [(2usize, 1.0f64), (3, -1.0)] {
            let s = synthetic_control_instance(class, 60, &mut rng);
            let slope = (s[55..].iter().sum::<f64>() - s[..5].iter().sum::<f64>()) / 5.0;
            assert!(slope * sign > 5.0, "class {class} slope {slope}");
        }
    }

    #[test]
    fn control_shifts_jump() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = synthetic_control_instance(4, 60, &mut rng);
        let head = s[..10].iter().sum::<f64>() / 10.0;
        let tail = s[50..].iter().sum::<f64>() / 10.0;
        assert!(tail - head > 4.0, "upward shift: {head} -> {tail}");
    }

    #[test]
    fn control_dataset_shape() {
        let d = synthetic_control(20, 60, 1);
        assert_eq!(d.len(), 120);
        assert_eq!(d.n_classes(), 6);
    }

    #[test]
    fn two_patterns_class_signature() {
        let mut rng = StdRng::seed_from_u64(7);
        // Class 0 (uu): both events start positive; class 3 (dd): negative.
        for (class, sign) in [(0usize, 1.0f64), (3, -1.0)] {
            // Average extremes over instances to defeat noise.
            let mut lead_sum = 0.0;
            for _ in 0..50 {
                let s = two_patterns_instance(class, 128, &mut rng);
                // The first nonzero event's leading half has the class sign.
                let first_event = s.iter().position(|&v| v.abs() > 3.0).expect("event exists");
                lead_sum += s[first_event + 2];
            }
            assert!(lead_sum * sign > 0.0, "class {class}: {lead_sum}");
        }
    }

    #[test]
    fn two_patterns_dataset_shape() {
        let d = two_patterns(10, 128, 2);
        assert_eq!(d.len(), 40);
        assert_eq!(d.n_classes(), 4);
        assert!(d.series.iter().all(|s| s.len() == 128));
    }

    #[test]
    fn trace_step_classes_end_high() {
        let mut rng = StdRng::seed_from_u64(8);
        for class in [2usize, 3] {
            let s = trace_instance(class, 200, &mut rng);
            let tail = s[180..].iter().sum::<f64>() / 20.0;
            assert!(tail > 2.0, "class {class} tail {tail}");
        }
        for class in [0usize, 1] {
            let s = trace_instance(class, 200, &mut rng);
            let tail = s[180..].iter().sum::<f64>() / 20.0;
            assert!(tail.abs() < 1.0, "class {class} tail {tail}");
        }
    }

    #[test]
    fn all_deterministic() {
        assert_eq!(synthetic_control(3, 60, 9), synthetic_control(3, 60, 9));
        assert_eq!(two_patterns(3, 128, 9), two_patterns(3, 128, 9));
        assert_eq!(trace(3, 200, 9), trace(3, 200, 9));
    }
}
