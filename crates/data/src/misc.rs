//! Short-series families: ItalyPowerDemand-like and Wafer-like.

use crate::synth::{add_gaussian_peak, add_noise, rand_f64, rand_int};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpm_ts::Dataset;

/// ItalyPowerDemand-like: 24-point daily electricity demand. Class 0
/// ("winter") has a single evening peak; class 1 ("summer") adds a strong
/// midday air-conditioning plateau.
pub fn italy_power_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 2, "italy-power family has classes 0..2");
    let l = length as f64;
    let mut s = vec![1.0; length];
    // Overnight trough.
    add_gaussian_peak(&mut s, 0.12 * l, 0.10 * l, -0.5);
    // Evening peak (both classes).
    add_gaussian_peak(&mut s, 0.80 * l, 0.07 * l, rand_f64(rng, 0.7, 0.9));
    if class == 1 {
        // Midday cooling load.
        add_gaussian_peak(&mut s, 0.50 * l, 0.10 * l, rand_f64(rng, 0.6, 0.8));
    } else {
        // Winter lunchtime dip.
        add_gaussian_peak(&mut s, 0.55 * l, 0.06 * l, -0.2);
    }
    add_noise(&mut s, 0.05, rng);
    s
}

/// Balanced ItalyPowerDemand-like dataset.
pub fn italy_power(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("ItalyPowerDemand", Vec::new(), Vec::new());
    for class in 0..2 {
        for _ in 0..n_per_class {
            d.push(italy_power_instance(class, length, &mut rng), class);
        }
    }
    d
}

/// Wafer-like: semiconductor process traces. Class 0 (normal) ramps
/// through clean process stages; class 1 (abnormal) injects a mid-process
/// excursion spike.
pub fn wafer_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 2, "wafer family has classes 0..2");
    let stage1 = length / 4;
    let stage2 = 3 * length / 4;
    let mut s: Vec<f64> = (0..length)
        .map(|i| {
            if i < stage1 {
                0.0
            } else if i < stage2 {
                2.0
            } else {
                0.5
            }
        })
        .collect();
    if class == 1 {
        let at = rand_int(rng, stage1 + 5, stage2 - 10);
        let amp = rand_f64(rng, 1.5, 3.0);
        add_gaussian_peak(&mut s, at as f64, 0.01 * length as f64 + 1.0, -amp);
    }
    add_noise(&mut s, 0.08, rng);
    s
}

/// Wafer-like dataset with the archive's class imbalance flavor
/// (`n_normal` vs `n_abnormal`).
pub fn wafer(n_normal: usize, n_abnormal: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("Wafer", Vec::new(), Vec::new());
    for _ in 0..n_normal {
        d.push(wafer_instance(0, length, &mut rng), 0);
    }
    for _ in 0..n_abnormal {
        d.push(wafer_instance(1, length, &mut rng), 1);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn italy_summer_has_midday_load() {
        let mut rng = StdRng::seed_from_u64(51);
        let n = 60;
        let len = 24;
        let midday = |s: &[f64]| s[11..14].iter().sum::<f64>() / 3.0;
        let mut w = 0.0;
        let mut su = 0.0;
        for _ in 0..n {
            w += midday(&italy_power_instance(0, len, &mut rng)) / n as f64;
            su += midday(&italy_power_instance(1, len, &mut rng)) / n as f64;
        }
        assert!(su > w + 0.3, "summer midday {su} vs winter {w}");
    }

    #[test]
    fn wafer_abnormal_dips() {
        let mut rng = StdRng::seed_from_u64(52);
        let n = 60;
        let min_mid = |s: &[f64]| s[40..110].iter().copied().fold(f64::INFINITY, f64::min);
        let mut normal = 0.0;
        let mut abnormal = 0.0;
        for _ in 0..n {
            normal += min_mid(&wafer_instance(0, 152, &mut rng)) / n as f64;
            abnormal += min_mid(&wafer_instance(1, 152, &mut rng)) / n as f64;
        }
        assert!(abnormal < normal - 0.8, "{abnormal} vs {normal}");
    }

    #[test]
    fn wafer_imbalance_respected() {
        let d = wafer(30, 10, 152, 6);
        assert_eq!(d.class_size(0), 30);
        assert_eq!(d.class_size(1), 10);
    }

    #[test]
    fn determinism() {
        assert_eq!(italy_power(5, 24, 7), italy_power(5, 24, 7));
        assert_eq!(wafer(5, 5, 152, 7), wafer(5, 5, 152, 7));
    }
}
