//! Spectrography synthetics (Coffee-like).
//!
//! The UCR Coffee data holds FTIR spectra of Arabica vs Robusta beans; the
//! discriminative regions are the caffeine and chlorogenic-acid absorption
//! bands, on top of shared carbohydrate/lipid structure (the paper's
//! Fig. 3 discussion). We synthesize spectra as sums of Gaussian bands at
//! fixed positions: shared bands have equal expected amplitude in both
//! classes; two marker bands differ by class.

use crate::synth::{add_gaussian_peak, add_noise, rand_f64};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpm_ts::Dataset;

/// Fractional positions of the shared absorption bands.
const SHARED_BANDS: [(f64, f64, f64); 4] = [
    // (position, width, amplitude) as fractions of the spectrum length.
    (0.12, 0.030, 1.2), // carbohydrates
    (0.35, 0.045, 0.9), // lipids
    (0.58, 0.025, 0.7),
    (0.85, 0.035, 1.0),
];

/// Caffeine marker band (stronger in class 1 / "Robusta").
const CAFFEINE: (f64, f64) = (0.70, 0.02);
/// Chlorogenic-acid marker band (stronger in class 1).
const CGA: (f64, f64) = (0.25, 0.018);

/// Generates one spectrum (class 0 = Arabica-like, 1 = Robusta-like).
pub fn coffee_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 2, "coffee family has classes 0..2");
    let l = length as f64;
    let mut s = vec![0.0; length];
    for &(pos, width, amp) in &SHARED_BANDS {
        let a = amp * rand_f64(rng, 0.9, 1.1);
        add_gaussian_peak(&mut s, pos * l, width * l, a);
    }
    // Robusta carries roughly twice the caffeine and more CGA.
    let caffeine_amp = if class == 0 { 0.4 } else { 0.8 } * rand_f64(rng, 0.9, 1.1);
    let cga_amp = if class == 0 { 0.3 } else { 0.55 } * rand_f64(rng, 0.9, 1.1);
    add_gaussian_peak(&mut s, CAFFEINE.0 * l, CAFFEINE.1 * l, caffeine_amp);
    add_gaussian_peak(&mut s, CGA.0 * l, CGA.1 * l, cga_amp);
    // Gentle baseline drift plus sensor noise.
    let drift = rand_f64(rng, -0.05, 0.05);
    for (i, v) in s.iter_mut().enumerate() {
        *v += drift * i as f64 / l;
    }
    add_noise(&mut s, 0.01, rng);
    s
}

/// Balanced Coffee-like dataset.
pub fn coffee(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("Coffee", Vec::new(), Vec::new());
    for class in 0..2 {
        for _ in 0..n_per_class {
            d.push(coffee_instance(class, length, &mut rng), class);
        }
    }
    d
}

/// OliveOil-like: four cultivar classes distinguished by *subtle*
/// amplitude ratios between two fatty-acid bands — the archive's OliveOil
/// is a famously hard, tiny dataset, and the subtlety here (6% steps) is
/// what keeps it hard.
pub fn olive_oil_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 4, "olive-oil family has classes 0..4");
    let l = length as f64;
    let mut s = vec![0.0; length];
    for &(pos, width, amp) in &SHARED_BANDS {
        add_gaussian_peak(&mut s, pos * l, width * l, amp * rand_f64(rng, 0.97, 1.03));
    }
    // The cultivar signature: a slowly varying ratio between two bands.
    let ratio = 1.0 + 0.06 * class as f64;
    add_gaussian_peak(
        &mut s,
        0.45 * l,
        0.02 * l,
        0.5 * ratio * rand_f64(rng, 0.98, 1.02),
    );
    add_gaussian_peak(
        &mut s,
        0.62 * l,
        0.02 * l,
        0.5 / ratio * rand_f64(rng, 0.98, 1.02),
    );
    add_noise(&mut s, 0.004, rng);
    s
}

/// OliveOil-like dataset.
pub fn olive_oil(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("OliveOil", Vec::new(), Vec::new());
    for class in 0..4 {
        for _ in 0..n_per_class {
            d.push(olive_oil_instance(class, length, &mut rng), class);
        }
    }
    d
}

/// Beef-like: five adulteration classes (pure beef + four offal
/// admixtures), each adding a contaminant band of increasing strength at a
/// class-specific position.
pub fn beef_instance(class: usize, length: usize, rng: &mut StdRng) -> Vec<f64> {
    assert!(class < 5, "beef family has classes 0..5");
    let l = length as f64;
    let mut s = vec![0.0; length];
    for &(pos, width, amp) in &SHARED_BANDS {
        add_gaussian_peak(&mut s, pos * l, width * l, amp * rand_f64(rng, 0.95, 1.05));
    }
    if class > 0 {
        // Contaminant band: position shifts with the offal type.
        let pos = 0.40 + 0.08 * (class - 1) as f64;
        add_gaussian_peak(&mut s, pos * l, 0.015 * l, 0.45 * rand_f64(rng, 0.9, 1.1));
    }
    add_noise(&mut s, 0.01, rng);
    s
}

/// Beef-like dataset.
pub fn beef(n_per_class: usize, length: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new("Beef", Vec::new(), Vec::new());
    for class in 0..5 {
        for _ in 0..n_per_class {
            d.push(beef_instance(class, length, &mut rng), class);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caffeine_band_separates_classes() {
        let mut rng = StdRng::seed_from_u64(41);
        let len = 286;
        let band = |s: &[f64]| {
            let c = (CAFFEINE.0 * len as f64) as usize;
            s[c - 3..c + 3].iter().sum::<f64>() / 6.0
        };
        let n = 50;
        let mut a = 0.0;
        let mut r = 0.0;
        for _ in 0..n {
            a += band(&coffee_instance(0, len, &mut rng)) / n as f64;
            r += band(&coffee_instance(1, len, &mut rng)) / n as f64;
        }
        assert!(r > a + 0.2, "Robusta caffeine {r} vs Arabica {a}");
    }

    #[test]
    fn shared_bands_are_similar_across_classes() {
        let mut rng = StdRng::seed_from_u64(42);
        let len = 286;
        let band = |s: &[f64]| {
            let c = (SHARED_BANDS[0].0 * len as f64) as usize;
            s[c - 3..c + 3].iter().sum::<f64>() / 6.0
        };
        let n = 50;
        let mut a = 0.0;
        let mut r = 0.0;
        for _ in 0..n {
            a += band(&coffee_instance(0, len, &mut rng)) / n as f64;
            r += band(&coffee_instance(1, len, &mut rng)) / n as f64;
        }
        assert!((a - r).abs() < 0.1, "shared band should match: {a} vs {r}");
    }

    #[test]
    fn dataset_shape_and_determinism() {
        let d = coffee(14, 286, 5);
        assert_eq!(d.len(), 28);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d, coffee(14, 286, 5));
    }

    #[test]
    fn olive_oil_ratio_orders_classes() {
        let mut rng = StdRng::seed_from_u64(43);
        let len = 285;
        let band_a = (0.45 * len as f64) as usize;
        let band_b = (0.62 * len as f64) as usize;
        let n = 40;
        let mut ratios = [0.0f64; 4];
        for (class, r) in ratios.iter_mut().enumerate() {
            for _ in 0..n {
                let s = olive_oil_instance(class, len, &mut rng);
                *r += (s[band_a] / s[band_b]) / n as f64;
            }
        }
        for w in ratios.windows(2) {
            assert!(w[1] > w[0], "ratio must rise with class: {ratios:?}");
        }
    }

    #[test]
    fn beef_contaminant_band_moves_with_class() {
        let mut rng = StdRng::seed_from_u64(44);
        let len = 235;
        // Pure beef (class 0) lacks the contaminant; adulterated classes
        // gain a band at a class-specific position.
        let pure = beef_instance(0, len, &mut rng);
        for class in 1..5usize {
            let adulterated = beef_instance(class, len, &mut rng);
            let pos = ((0.40 + 0.08 * (class - 1) as f64) * len as f64) as usize;
            let delta = adulterated[pos] - pure[pos];
            assert!(delta > 0.2, "class {class}: band delta {delta}");
        }
    }

    #[test]
    fn olive_and_beef_shapes() {
        let o = olive_oil(8, 285, 6);
        assert_eq!(o.n_classes(), 4);
        assert_eq!(o.len(), 32);
        let b = beef(6, 235, 6);
        assert_eq!(b.n_classes(), 5);
        assert_eq!(b.len(), 30);
        assert_eq!(o, olive_oil(8, 285, 6));
    }
}
