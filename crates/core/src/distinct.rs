//! Distinct-pattern selection — Algorithm 2 (`FindDistinct`).
//!
//! Three steps: (1) compute the similarity threshold τ as a percentile of
//! the intra-cluster pairwise distances collected during refinement;
//! (2) deduplicate the candidate pool, keeping the more frequent of any
//! pair closer than τ; (3) transform the training data into the candidate
//! feature space and run CFS — the surviving features are the
//! representative patterns.

use crate::cache::{Ctx, SaxCache};
use crate::candidates::Candidate;
use crate::config::RpmConfig;
use crate::engine::{Engine, EngineError};
use crate::transform::{pattern_distance_plans, transform_set_ctx};
use rpm_ml::cfs_select;
use rpm_ts::{percentile, BatchedMatch, Label, MatchKernel, MatchPlan};

/// The τ similarity threshold: the configured percentile of the pooled
/// intra-cluster distances. Returns 0.0 when the pool is empty (no
/// dedup pressure — every candidate is kept).
pub fn compute_tau(intra_cluster_distances: &[f64], tau_percentile: f64) -> f64 {
    if intra_cluster_distances.is_empty() {
        0.0
    } else {
        percentile(intra_cluster_distances, tau_percentile)
    }
}

/// Removes near-duplicate candidates (Algorithm 2 lines 5-18): processing
/// in descending frequency order, a candidate within τ of an already-kept
/// one is dropped — equivalent to the paper's replace-if-more-frequent
/// bookkeeping, without the in-place swaps.
pub fn remove_similar(candidates: Vec<Candidate>, tau: f64, early_abandon: bool) -> Vec<Candidate> {
    remove_similar_kernel(candidates, tau, early_abandon, MatchKernel::default())
}

/// [`remove_similar`] with an explicit closest-match kernel. Each
/// candidate's match plan is prepared once up front; the O(pool²) dedup
/// scan then reuses them for every pairwise comparison.
pub fn remove_similar_kernel(
    mut candidates: Vec<Candidate>,
    tau: f64,
    early_abandon: bool,
    kernel: MatchKernel,
) -> Vec<Candidate> {
    candidates.sort_by_key(|c| std::cmp::Reverse(c.frequency));
    let mut kept: Vec<Candidate> = Vec::new();
    let mut kept_plans: Vec<MatchPlan> = Vec::new();
    for c in candidates {
        let plan = MatchPlan::with_kernel(&c.values, kernel);
        let similar = if kernel == MatchKernel::Batched {
            // Pattern-set path: every kept plan strictly shorter than
            // the candidate slides over it — one cascade scan covers
            // them all. Equal-or-longer kept plans keep the per-pattern
            // orientation (the candidate slides over *them*), so every
            // pairwise distance is bit-identical to the per-pattern
            // scan above.
            let shorter: Vec<&MatchPlan> =
                kept_plans.iter().filter(|k| k.len() < plan.len()).collect();
            let batched_hit = !shorter.is_empty() && {
                let set = BatchedMatch::from_refs(&shorter);
                set.match_all(&c.values, early_abandon, None)
                    .iter()
                    .any(|m| m.is_some_and(|m| m.distance < tau))
            };
            batched_hit
                || kept_plans
                    .iter()
                    .filter(|k| k.len() >= plan.len())
                    .any(|k| pattern_distance_plans(&plan, k, early_abandon) < tau)
        } else {
            kept_plans
                .iter()
                .any(|k| pattern_distance_plans(&plan, k, early_abandon) < tau)
        };
        if !similar {
            kept.push(c);
            kept_plans.push(plan);
        }
    }
    kept
}

/// Full Algorithm 2: τ, dedup, transform, CFS. Returns the selected
/// candidates (the representative patterns) in their post-dedup order.
///
/// `train`/`labels` are the raw training series and their labels.
pub fn select_representative(
    candidates: Vec<Candidate>,
    intra_cluster_distances: &[f64],
    train: &[Vec<f64>],
    labels: &[Label],
    config: &RpmConfig,
) -> Vec<Candidate> {
    let cache = SaxCache::disabled();
    let ctx = Ctx::new(Engine::serial(), &cache);
    select_representative_ctx(
        candidates,
        intra_cluster_distances,
        train,
        labels,
        config,
        &ctx,
    )
    .expect("serial selection cannot fail")
}

/// [`select_representative`] inside a training run: the CFS transform
/// runs on the shared engine and its per-candidate columns are memoized,
/// so the final SVM transform reuses every selected candidate's column.
pub(crate) fn select_representative_ctx(
    candidates: Vec<Candidate>,
    intra_cluster_distances: &[f64],
    train: &[Vec<f64>],
    labels: &[Label],
    config: &RpmConfig,
    ctx: &Ctx<'_>,
) -> Result<Vec<Candidate>, EngineError> {
    let _span = rpm_obs::span!("select");
    if candidates.is_empty() {
        return Ok(candidates);
    }
    rpm_obs::metrics()
        .prune_pool_in
        .add(candidates.len() as u64);
    let tau = compute_tau(intra_cluster_distances, config.tau_percentile);
    let dedup_span = rpm_obs::span!("dedup");
    let mut deduped = remove_similar_kernel(candidates, tau, config.early_abandon, config.kernel);
    if deduped.len() > config.max_candidates {
        // Keep the candidates covering the most training instances (ties
        // broken by raw frequency); the transform below is the training
        // bottleneck and scales linearly in this pool.
        deduped.sort_by_key(|c| std::cmp::Reverse((c.coverage, c.frequency)));
        deduped.truncate(config.max_candidates);
    }
    drop(dedup_span);
    rpm_obs::metrics().prune_kept.add(deduped.len() as u64);
    if deduped.len() <= 1 {
        return Ok(deduped);
    }
    // Transform the training set into the candidate-distance space.
    let pattern_values: Vec<Vec<f64>> = deduped.iter().map(|c| c.values.clone()).collect();
    let rows = transform_set_ctx(
        train,
        &pattern_values,
        false,
        config.early_abandon,
        config.kernel,
        ctx,
    )?;
    let cfs_span = rpm_obs::span!("cfs");
    rpm_obs::metrics().cfs_features_in.add(deduped.len() as u64);
    let selected = cfs_select(&rows, labels, &config.cfs);
    drop(cfs_span);
    let mut keep = vec![false; deduped.len()];
    for idx in selected {
        keep[idx] = true;
    }
    let kept: Vec<Candidate> = deduped
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect();
    if rpm_obs::enabled() {
        rpm_obs::metrics().cfs_survivors.add(kept.len() as u64);
        let mut per_class: std::collections::BTreeMap<Label, u64> =
            std::collections::BTreeMap::new();
        for c in &kept {
            *per_class.entry(c.class).or_insert(0) += 1;
        }
        for (class, n) in per_class {
            rpm_obs::metrics::labeled_add(&format!("cfs.survivors.class={class}"), n);
        }
    }
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpm_sax::SaxConfig;

    fn cand(class: Label, values: Vec<f64>, frequency: usize) -> Candidate {
        Candidate {
            class,
            values,
            frequency,
            coverage: frequency,
            sax: SaxConfig::new(8, 4, 4),
        }
    }

    fn wave(phase: f64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (std::f64::consts::TAU * i as f64 / len as f64 + phase).sin())
            .collect()
    }

    #[test]
    fn tau_is_the_percentile() {
        let dists = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert!((compute_tau(&dists, 30.0) - 3.0).abs() < 1e-12);
        assert_eq!(compute_tau(&[], 30.0), 0.0);
    }

    #[test]
    fn near_duplicates_collapse_to_the_more_frequent() {
        let a = cand(0, wave(0.0, 24), 10);
        let b = cand(0, wave(0.02, 24), 3); // nearly identical shape
        let c = cand(1, wave(1.5, 24), 5); // different phase
        let kept = remove_similar(vec![a, b, c], 0.3, true);
        assert_eq!(
            kept.len(),
            2,
            "{:?}",
            kept.iter().map(|k| k.frequency).collect::<Vec<_>>()
        );
        assert_eq!(kept[0].frequency, 10, "most frequent survives");
        assert!(kept.iter().any(|k| k.frequency == 5));
    }

    #[test]
    fn zero_tau_keeps_everything() {
        let cands = vec![cand(0, wave(0.0, 24), 4), cand(0, wave(0.001, 24), 3)];
        let kept = remove_similar(cands, 0.0, true);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn selection_prefers_the_discriminative_pattern() {
        // Two classes: class 0 contains an up-bump, class 1 a down-bump.
        // Candidate A matches class 0's bump; candidate B is uninformative
        // (present in both); CFS must keep a discriminative one.
        let up: Vec<f64> = (0..16).map(|i| ((i as f64) * 0.4).sin()).collect();
        let down: Vec<f64> = up.iter().map(|v| -v).collect();
        let mut train = Vec::new();
        let mut labels = Vec::new();
        for k in 0..12 {
            let mut s = vec![0.0; 64];
            let at = 8 + (k % 5) * 8;
            let src = if k % 2 == 0 { &up } else { &down };
            for i in 0..16 {
                s[at + i] = src[i] * 3.0;
            }
            // Slight per-instance jitter so features are not constant.
            s[0] = (k as f64) * 0.01;
            train.push(s);
            labels.push(k % 2);
        }
        let cands = vec![
            cand(0, up.clone(), 6),
            cand(1, down.clone(), 6),
            cand(0, vec![0.0; 16], 2), // flat, matches everything equally
        ];
        let selected = select_representative(
            cands,
            &[0.1, 0.2, 0.3],
            &train,
            &labels,
            &RpmConfig::default(),
        );
        assert!(!selected.is_empty());
        // The flat candidate must not be the only survivor.
        assert!(
            selected.iter().any(|c| c.values == up || c.values == down),
            "no discriminative pattern kept"
        );
    }

    #[test]
    fn empty_candidates_pass_through() {
        let selected = select_representative(Vec::new(), &[], &[], &[], &RpmConfig::default());
        assert!(selected.is_empty());
    }

    #[test]
    fn single_candidate_skips_selection() {
        let c = cand(0, wave(0.0, 16), 4);
        let train = vec![vec![0.0; 32]];
        let labels = vec![0];
        let selected =
            select_representative(vec![c], &[0.5], &train, &labels, &RpmConfig::default());
        assert_eq!(selected.len(), 1);
    }
}
