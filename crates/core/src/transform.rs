//! Feature-space transformation (§3.1) and the pattern distance.
//!
//! A time series becomes the vector of closest-match distances to the K
//! representative patterns — the "universal data type" the paper feeds to
//! the SVM. The rotation-invariant variant (§6.1) additionally matches
//! against the series rotated at its midpoint and keeps the minimum, so a
//! best match severed by rotation is re-joined in one of the two views.
//!
//! Batch transforms run on the shared training [`Engine`]
//! (`rpm_core::engine`): workers pull series indices from a shared
//! counter and results merge by index, so the parallel output is
//! bit-identical to the serial one, and worker panics surface as
//! [`EngineError`] values instead of aborting the process.
//!
//! Every transform here is built on [`MatchPlan`]s: the per-pattern
//! closest-match preparation (z-normalization, the early-abandon |zp|
//! sort, `Σzp²`) is computed **once** per pattern and reused across every
//! series it is matched against — the train-set transform, CFS scoring
//! and batch prediction all pay O(patterns) plan builds instead of
//! O(patterns · series).

use crate::cache::Ctx;
use crate::engine::{Engine, EngineError};
use rpm_cluster::resample;
use rpm_ts::{euclidean, rotate_half, znorm, BatchedMatch, MatchKernel, MatchPlan, ScanCounters};
use std::sync::Arc;

/// Distance between two patterns / subsequences of possibly different
/// lengths: the shorter is slid over the longer (both z-normalized) and
/// the length-normalized closest-match distance is returned. Symmetric by
/// construction. Falls back to resampling when one side is empty-window
/// degenerate (cannot happen for grammar-derived patterns, but keeps the
/// function total).
pub fn pattern_distance(a: &[f64], b: &[f64], early_abandon: bool) -> f64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match MatchPlan::new(short).best_match(long, early_abandon) {
        Some(m) => m.distance,
        None => f64::INFINITY,
    }
}

/// [`pattern_distance`] between two *prepared* sides: the shorter plan is
/// slid over the longer side's raw values. Callers holding a plan per
/// subsequence (candidate refinement, the τ pool, medoid selection) avoid
/// re-preparing the shorter pattern on every pair.
pub fn pattern_distance_plans(a: &MatchPlan, b: &MatchPlan, early_abandon: bool) -> f64 {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match short.best_match(long.raw(), early_abandon) {
        Some(m) => m.distance,
        None => f64::INFINITY,
    }
}

/// Prepares one [`MatchPlan`] per pattern with the given kernel — the
/// entry ticket to every plan-based transform below.
pub fn prepare_patterns(patterns: &[Vec<f64>], kernel: MatchKernel) -> Vec<MatchPlan> {
    patterns
        .iter()
        .map(|p| MatchPlan::with_kernel(p, kernel))
        .collect()
}

/// Closest-match distance of a prepared pattern inside `series`, with the
/// resampling fallback for a pattern longer than the series (possible when
/// test series are shorter than the training series the pattern came
/// from): the pattern is linearly resampled to the series length and
/// compared directly, keeping the feature finite.
fn feature_distance_plan(
    plan: &MatchPlan,
    series: &[f64],
    early_abandon: bool,
    counters: Option<&ScanCounters>,
) -> f64 {
    if plan.len() <= series.len() {
        match plan.best_match_counted(series, early_abandon, counters) {
            Some(m) => m.distance,
            None => 0.0, // empty pattern: degenerate, treat as zero signal
        }
    } else {
        let shrunk = resample(plan.raw(), series.len());
        let d = euclidean(&znorm(&shrunk), &znorm(series));
        d / (series.len() as f64).sqrt()
    }
}

/// Transforms one series into the K-dimensional pattern-distance vector
/// using pre-built plans — the zero-per-call-preparation entry point for
/// repeated (serving) transforms.
///
/// While `rpm-obs` is enabled each call also feeds the
/// `transform.series_ns` histogram; the disabled path skips the clock
/// reads entirely.
pub fn transform_series_plans(
    series: &[f64],
    plans: &[MatchPlan],
    rotation_invariant: bool,
    early_abandon: bool,
) -> Vec<f64> {
    transform_series_plans_counted(series, plans, rotation_invariant, early_abandon, None)
}

/// [`transform_series_plans`] with an optional per-request
/// [`ScanCounters`] accumulator (the request-tracing path). Counting is
/// integer-only side work inside the kernel, so the distances are
/// bit-identical with or without it.
pub fn transform_series_plans_counted(
    series: &[f64],
    plans: &[MatchPlan],
    rotation_invariant: bool,
    early_abandon: bool,
    counters: Option<&ScanCounters>,
) -> Vec<f64> {
    if !rpm_obs::enabled() {
        return transform_series_inner(series, plans, rotation_invariant, early_abandon, counters);
    }
    let start = rpm_obs::now_ns();
    let out = transform_series_inner(series, plans, rotation_invariant, early_abandon, counters);
    rpm_obs::metrics()
        .transform_series
        .observe(rpm_obs::now_ns().saturating_sub(start));
    out
}

/// Transforms one series into the K-dimensional pattern-distance vector.
///
/// Prepares a plan per pattern on every call; callers transforming more
/// than one series should use [`prepare_patterns`] +
/// [`transform_series_plans`] instead.
pub fn transform_series(
    series: &[f64],
    patterns: &[Vec<f64>],
    rotation_invariant: bool,
    early_abandon: bool,
) -> Vec<f64> {
    let plans = prepare_patterns(patterns, MatchKernel::default());
    transform_series_plans(series, &plans, rotation_invariant, early_abandon)
}

fn transform_series_inner(
    series: &[f64],
    plans: &[MatchPlan],
    rotation_invariant: bool,
    early_abandon: bool,
    counters: Option<&ScanCounters>,
) -> Vec<f64> {
    if wants_batched(plans) {
        // Ad-hoc batched route for callers without a prebuilt set;
        // repeated-transform callers should hold a [`BatchedMatch`] and
        // use [`transform_series_batched_counted`] instead.
        let batched = BatchedMatch::new(plans);
        return batched_series_row(
            &batched,
            plans,
            series,
            rotation_invariant,
            early_abandon,
            counters,
        );
    }
    let rotated = if rotation_invariant {
        Some(rotate_half(series))
    } else {
        None
    };
    plans
        .iter()
        .map(|p| {
            let d = feature_distance_plan(p, series, early_abandon, counters);
            match &rotated {
                Some(r) => d.min(feature_distance_plan(p, r, early_abandon, counters)),
                None => d,
            }
        })
        .collect()
}

/// True when `plans` should run through the pattern-set cascade: the
/// pipeline prepares every plan with one kernel, so the first grouped
/// plan speaks for the set (fallback-only sets gain nothing and keep
/// the per-pattern path).
fn wants_batched(plans: &[MatchPlan]) -> bool {
    plans.iter().any(|p| p.kernel() == MatchKernel::Batched)
}

/// Prepares the batched pattern-set scanner for a plan slice, or `None`
/// when no plan requests the batched kernel — build once per model
/// (train/load) and reuse across every transformed series.
pub fn batched_match(plans: &[MatchPlan]) -> Option<BatchedMatch> {
    wants_batched(plans).then(|| BatchedMatch::new(plans))
}

/// One series' feature row through the batched cascade: a single
/// `match_all` per view (plus one for the rotated view), with the same
/// resampling fallback [`feature_distance_plan`] applies to patterns
/// longer than the series. Distances are bit-identical to the
/// per-pattern rolling path.
fn batched_series_row(
    batched: &BatchedMatch,
    plans: &[MatchPlan],
    series: &[f64],
    rotation_invariant: bool,
    early_abandon: bool,
    counters: Option<&ScanCounters>,
) -> Vec<f64> {
    let mut row = batched_feature_distances(batched, plans, series, early_abandon, counters);
    if rotation_invariant {
        let rotated = rotate_half(series);
        let rot = batched_feature_distances(batched, plans, &rotated, early_abandon, counters);
        for (d, r) in row.iter_mut().zip(rot) {
            *d = d.min(r);
        }
    }
    row
}

fn batched_feature_distances(
    batched: &BatchedMatch,
    plans: &[MatchPlan],
    series: &[f64],
    early_abandon: bool,
    counters: Option<&ScanCounters>,
) -> Vec<f64> {
    let matches = batched.match_all(series, early_abandon, counters);
    plans
        .iter()
        .zip(&matches)
        .map(|(plan, m)| match m {
            Some(m) => m.distance,
            None if !plan.is_empty() && plan.len() > series.len() => {
                let shrunk = resample(plan.raw(), series.len());
                euclidean(&znorm(&shrunk), &znorm(series)) / (series.len() as f64).sqrt()
            }
            None => 0.0, // empty pattern: degenerate, treat as zero signal
        })
        .collect()
}

/// [`transform_series_plans_counted`] against a prebuilt
/// [`BatchedMatch`] — the serving path's entry point, paying zero
/// per-call preparation. `plans` must be the slice the set was built
/// from (it supplies the resampling fallback for oversized patterns).
pub fn transform_series_batched_counted(
    series: &[f64],
    plans: &[MatchPlan],
    batched: &BatchedMatch,
    rotation_invariant: bool,
    early_abandon: bool,
    counters: Option<&ScanCounters>,
) -> Vec<f64> {
    if !rpm_obs::enabled() {
        return batched_series_row(
            batched,
            plans,
            series,
            rotation_invariant,
            early_abandon,
            counters,
        );
    }
    let start = rpm_obs::now_ns();
    let out = batched_series_row(
        batched,
        plans,
        series,
        rotation_invariant,
        early_abandon,
        counters,
    );
    rpm_obs::metrics()
        .transform_series
        .observe(rpm_obs::now_ns().saturating_sub(start));
    out
}

/// Transforms a whole set of series (plans prepared once internally).
pub fn transform_set(
    series: &[Vec<f64>],
    patterns: &[Vec<f64>],
    rotation_invariant: bool,
    early_abandon: bool,
) -> Vec<Vec<f64>> {
    let plans = prepare_patterns(patterns, MatchKernel::default());
    series
        .iter()
        .map(|s| transform_series_plans(s, &plans, rotation_invariant, early_abandon))
        .collect()
}

/// Plan-based [`transform_set`] on an explicit [`Engine`]: series are
/// distributed across the engine's workers and merged by index, so
/// results are identical to the serial version. A panic inside a worker
/// becomes an [`EngineError`] instead of a process abort.
///
/// The batch is borrowed — any `&[S]` whose items view as `&[f64]`
/// (`&[Vec<f64>]`, `&[&[f64]]`, …) works, so serving callers can fan
/// out over request buffers they do not own.
pub fn transform_set_plans_engine<S: AsRef<[f64]> + Sync>(
    series: &[S],
    plans: &[MatchPlan],
    rotation_invariant: bool,
    early_abandon: bool,
    engine: &Engine,
) -> Result<Vec<Vec<f64>>, EngineError> {
    transform_set_plans_engine_counted(
        series,
        plans,
        rotation_invariant,
        early_abandon,
        engine,
        None,
    )
}

/// [`transform_set_plans_engine`] with an optional shared
/// [`ScanCounters`] accumulator: every worker adds into the same atomic
/// totals, so the caller reads one request-scoped sum after the batch
/// joins. Results stay bit-identical to the uncounted form.
pub fn transform_set_plans_engine_counted<S: AsRef<[f64]> + Sync>(
    series: &[S],
    plans: &[MatchPlan],
    rotation_invariant: bool,
    early_abandon: bool,
    engine: &Engine,
    counters: Option<&ScanCounters>,
) -> Result<Vec<Vec<f64>>, EngineError> {
    // For the batched kernel, build the pattern set once and share it
    // across workers (it is `Sync`) instead of once per series.
    let batched = wants_batched(plans).then(|| BatchedMatch::new(plans));
    engine.map(series, |_, s| match &batched {
        Some(b) => transform_series_batched_counted(
            s.as_ref(),
            plans,
            b,
            rotation_invariant,
            early_abandon,
            counters,
        ),
        None => transform_series_plans_counted(
            s.as_ref(),
            plans,
            rotation_invariant,
            early_abandon,
            counters,
        ),
    })
}

/// [`transform_set`] on an explicit [`Engine`] (plans prepared once
/// internally with the default kernel).
pub fn transform_set_engine(
    series: &[Vec<f64>],
    patterns: &[Vec<f64>],
    rotation_invariant: bool,
    early_abandon: bool,
    engine: &Engine,
) -> Result<Vec<Vec<f64>>, EngineError> {
    let plans = prepare_patterns(patterns, MatchKernel::default());
    transform_set_plans_engine(series, &plans, rotation_invariant, early_abandon, engine)
}

/// Parallel [`transform_set`] over `n_threads` workers — the batch
/// classification entry point. Identical results to the serial version.
pub fn transform_set_parallel(
    series: &[Vec<f64>],
    patterns: &[Vec<f64>],
    rotation_invariant: bool,
    early_abandon: bool,
    n_threads: usize,
) -> Result<Vec<Vec<f64>>, EngineError> {
    transform_set_engine(
        series,
        patterns,
        rotation_invariant,
        early_abandon,
        &Engine::new(n_threads.max(1)),
    )
}

/// Training-internal transform: like [`transform_set_engine`] but
/// memoizing per-pattern *columns* in the run's cache, keyed by the
/// context's set identity. The CFS-selection transform and the final SVM
/// transform both call this over the same training series, so every
/// pattern surviving selection reuses its column instead of re-running
/// the closest-match scan. Workers fan out over patterns (columns are the
/// cacheable unit); rows are assembled in index order afterwards, keeping
/// the result bit-identical to [`transform_set`].
pub(crate) fn transform_set_ctx(
    series: &[Vec<f64>],
    patterns: &[Vec<f64>],
    rotation_invariant: bool,
    early_abandon: bool,
    kernel: MatchKernel,
    ctx: &Ctx<'_>,
) -> Result<Vec<Vec<f64>>, EngineError> {
    let _span = rpm_obs::span!("transform");
    rpm_obs::metrics()
        .transform_columns
        .add(patterns.len() as u64);
    if kernel == MatchKernel::Batched {
        return transform_set_ctx_batched(series, patterns, rotation_invariant, early_abandon, ctx);
    }
    let rotated: Option<Vec<Vec<f64>>> =
        rotation_invariant.then(|| series.iter().map(|s| rotate_half(s)).collect());
    let columns = ctx.engine.map(patterns, |_, p| {
        ctx.cache.column(
            ctx.set,
            p,
            rotation_invariant,
            early_abandon,
            kernel,
            || {
                // One plan per column, reused across every series in the
                // set — the per-pattern sort and normalization amortize
                // over the whole column.
                let plan = MatchPlan::with_kernel(p, kernel);
                series
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let d = feature_distance_plan(&plan, s, early_abandon, None);
                        match &rotated {
                            Some(r) => {
                                d.min(feature_distance_plan(&plan, &r[i], early_abandon, None))
                            }
                            None => d,
                        }
                    })
                    .collect()
            },
        )
    })?;
    Ok((0..series.len())
        .map(|i| columns.iter().map(|c| c[i]).collect())
        .collect())
}

/// The batched-kernel arm of [`transform_set_ctx`]: instead of a
/// closest-match scan per (pattern, series) pair, the *missing* columns
/// are computed in one pattern-set cascade per series — one shared
/// `RollingStats` per (series, pattern length) — and the workers fan
/// out over series (rows) rather than patterns (columns). Cache
/// semantics are unchanged: one recorded hit or miss per pattern
/// column, misses stored for the CFS→SVM transform reuse, rows
/// bit-identical to the per-pattern path.
fn transform_set_ctx_batched(
    series: &[Vec<f64>],
    patterns: &[Vec<f64>],
    rotation_invariant: bool,
    early_abandon: bool,
    ctx: &Ctx<'_>,
) -> Result<Vec<Vec<f64>>, EngineError> {
    let kernel = MatchKernel::Batched;
    let cached: Vec<Option<Arc<Vec<f64>>>> = patterns
        .iter()
        .map(|p| {
            ctx.cache
                .try_column(ctx.set, p, rotation_invariant, early_abandon, kernel)
        })
        .collect();
    let missing: Vec<usize> = cached
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.is_none().then_some(i))
        .collect();
    let computed: Vec<Arc<Vec<f64>>> = if missing.is_empty() {
        Vec::new()
    } else {
        let missing_patterns: Vec<Vec<f64>> =
            missing.iter().map(|&i| patterns[i].clone()).collect();
        let plans = prepare_patterns(&missing_patterns, kernel);
        let batched = BatchedMatch::new(&plans);
        let rows = ctx.engine.map(series, |_, s| {
            batched_series_row(&batched, &plans, s, rotation_invariant, early_abandon, None)
        })?;
        missing
            .iter()
            .enumerate()
            .map(|(k, &pattern_idx)| {
                let col: Vec<f64> = rows.iter().map(|r| r[k]).collect();
                ctx.cache.store_column(
                    ctx.set,
                    &patterns[pattern_idx],
                    rotation_invariant,
                    early_abandon,
                    kernel,
                    Arc::new(col),
                )
            })
            .collect()
    };
    let mut from_scan = computed.into_iter();
    let columns: Vec<Arc<Vec<f64>>> = cached
        .into_iter()
        .map(|c| c.unwrap_or_else(|| from_scan.next().expect("one computed column per miss")))
        .collect();
    Ok((0..series.len())
        .map(|i| columns.iter().map(|c| c[i]).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SaxCache;

    fn bump(at: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let d = (i as f64 - at as f64) / 3.0;
                (-0.5 * d * d).exp()
            })
            .collect()
    }

    #[test]
    fn pattern_distance_is_symmetric() {
        let a = bump(10, 30);
        let b = bump(20, 50);
        let d1 = pattern_distance(&a, &b, true);
        let d2 = pattern_distance(&b, &a, true);
        assert_eq!(d1, d2);
    }

    #[test]
    fn identical_patterns_have_zero_distance() {
        let a = bump(5, 20);
        assert!(pattern_distance(&a, &a, true) < 1e-9);
    }

    #[test]
    fn containing_series_matches_its_pattern() {
        let series = bump(40, 100);
        let pattern = series[30..55].to_vec();
        let f = transform_series(&series, &[pattern], false, true);
        assert!(f[0] < 1e-9, "{f:?}");
    }

    #[test]
    fn transform_width_equals_pattern_count() {
        let series = bump(10, 64);
        let pats = vec![bump(3, 10), bump(5, 12), bump(7, 20)];
        let f = transform_series(&series, &pats, false, true);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn oversized_pattern_stays_finite() {
        let series = bump(5, 16);
        let pattern = bump(30, 64);
        let f = transform_series(&series, &[pattern], false, true);
        assert!(f[0].is_finite());
    }

    #[test]
    fn rotation_invariance_recovers_severed_match() {
        // Series with the bump at the end; rotate so the bump is split
        // across the wrap point; the plain transform misses it while the
        // rotation-invariant one recovers a near-zero distance.
        let series = bump(50, 100);
        let pattern = series[38..63].to_vec();
        let severed = rpm_ts::rotate(&series, 50); // cut through the bump
        let plain = transform_series(&severed, std::slice::from_ref(&pattern), false, true);
        let invariant = transform_series(&severed, &[pattern], true, true);
        assert!(invariant[0] < 1e-6, "{invariant:?}");
        assert!(
            plain[0] > invariant[0] + 0.05,
            "plain {plain:?} vs {invariant:?}"
        );
    }

    #[test]
    fn rotation_invariant_distance_never_exceeds_plain() {
        let series = bump(20, 80);
        let pats = vec![bump(4, 15), bump(9, 25)];
        let plain = transform_series(&series, &pats, false, true);
        let inv = transform_series(&series, &pats, true, true);
        for (p, i) in plain.iter().zip(&inv) {
            assert!(i <= p, "invariant must take the min: {i} > {p}");
        }
    }

    #[test]
    fn transform_set_shape() {
        let set = vec![bump(5, 40), bump(9, 40)];
        let pats = vec![bump(3, 10)];
        let t = transform_set(&set, &pats, false, true);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].len(), 1);
    }

    #[test]
    fn parallel_transform_matches_serial() {
        let set: Vec<Vec<f64>> = (0..17).map(|k| bump(5 + k, 60)).collect();
        let pats = vec![bump(3, 10), bump(7, 22)];
        let serial = transform_set(&set, &pats, false, true);
        for threads in [1usize, 2, 4, 32] {
            let par = transform_set_parallel(&set, &pats, false, true, threads).unwrap();
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_transform_handles_empty_set() {
        let pats = vec![bump(3, 10)];
        let par = transform_set_parallel(&[], &pats, false, true, 4).unwrap();
        assert!(par.is_empty());
    }

    #[test]
    fn cached_transform_matches_plain_for_both_rotations() {
        let set: Vec<Vec<f64>> = (0..9).map(|k| bump(4 + 3 * k, 48)).collect();
        let pats = vec![bump(2, 9), bump(6, 14), bump(3, 11)];
        let cache = SaxCache::new(true);
        for rotation in [false, true] {
            let plain = transform_set(&set, &pats, rotation, true);
            for threads in [1usize, 4] {
                let ctx = Ctx::new(Engine::new(threads), &cache);
                // Twice: cold (misses) then warm (all columns hit).
                for _ in 0..2 {
                    let got =
                        transform_set_ctx(&set, &pats, rotation, true, MatchKernel::Rolling, &ctx)
                            .unwrap();
                    assert_eq!(plain, got, "rotation={rotation} threads={threads}");
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 6, "3 patterns x 2 rotation variants");
        assert!(stats.hits >= 18, "repeats served from memory: {stats:?}");
    }

    #[test]
    fn plan_transforms_match_per_call_preparation() {
        let set: Vec<Vec<f64>> = (0..7).map(|k| bump(6 + 2 * k, 52)).collect();
        let pats = vec![bump(3, 11), bump(8, 19)];
        let plans = prepare_patterns(&pats, MatchKernel::Rolling);
        for s in &set {
            assert_eq!(
                transform_series(s, &pats, true, true),
                transform_series_plans(s, &plans, true, true)
            );
        }
    }

    #[test]
    fn naive_kernel_transform_agrees_with_rolling() {
        let set: Vec<Vec<f64>> = (0..5).map(|k| bump(9 + 4 * k, 64)).collect();
        let pats = vec![bump(4, 13), bump(2, 21)];
        let rolling = prepare_patterns(&pats, MatchKernel::Rolling);
        let naive = prepare_patterns(&pats, MatchKernel::Naive);
        for s in &set {
            let a = transform_series_plans(s, &rolling, false, true);
            let b = transform_series_plans(s, &naive, false, true);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn pattern_distance_plans_matches_raw_form() {
        let a = bump(10, 30);
        let b = bump(20, 50);
        let pa = MatchPlan::new(&a);
        let pb = MatchPlan::new(&b);
        assert_eq!(
            pattern_distance(&a, &b, true),
            pattern_distance_plans(&pa, &pb, true)
        );
        assert_eq!(
            pattern_distance_plans(&pa, &pb, true),
            pattern_distance_plans(&pb, &pa, true),
            "plan form stays symmetric"
        );
    }

    #[test]
    fn counted_batch_transform_is_bit_identical_and_sums_across_workers() {
        let set: Vec<Vec<f64>> = (0..12).map(|k| bump(3 + 4 * k, 72)).collect();
        let pats = vec![bump(5, 16), bump(2, 24)];
        let plans = prepare_patterns(&pats, MatchKernel::Rolling);
        let engine = Engine::new(4);
        let plain = transform_set_plans_engine(&set, &plans, true, true, &engine).unwrap();
        let counters = ScanCounters::new();
        let counted =
            transform_set_plans_engine_counted(&set, &plans, true, true, &engine, Some(&counters))
                .unwrap();
        assert_eq!(plain, counted, "counting must not perturb the transform");
        let stats = counters.snapshot();
        // rotation-invariant: 2 scans per (series, pattern) pair.
        assert_eq!(stats.searches, (set.len() * pats.len() * 2) as u64);
        assert!(stats.windows > 0);
        assert!(stats.match_ns > 0);
    }

    #[test]
    fn batched_transform_builds_stats_once_per_series() {
        // The CFS-scoring fix: with K same-length patterns, the batched
        // path computes the per-series rolling statistics ONCE and shares
        // them across all K cascade scans, where the per-pattern rolling
        // path rebuilds them K times. The `stats_builds` counter is the
        // contract: series.len() × length-groups for batched, series.len()
        // × K for rolling.
        let set: Vec<Vec<f64>> = (0..6).map(|k| bump(3 + 5 * k, 72)).collect();
        let pats = vec![bump(5, 16), bump(2, 16), bump(9, 16), bump(12, 16)];
        let engine = Engine::serial();

        let batched_plans = prepare_patterns(&pats, MatchKernel::Batched);
        let batched_counters = ScanCounters::new();
        let batched_rows = transform_set_plans_engine_counted(
            &set,
            &batched_plans,
            false,
            true,
            &engine,
            Some(&batched_counters),
        )
        .unwrap();
        let batched_stats = batched_counters.snapshot();
        assert_eq!(
            batched_stats.stats_builds,
            set.len() as u64,
            "one RollingStats build per (series, length-group)"
        );
        // Pair accounting is preserved: still one search per (series,
        // pattern), and the cascade pruned at least something.
        assert_eq!(batched_stats.searches, (set.len() * pats.len()) as u64);
        assert!(batched_stats.pruned_total() > 0, "{batched_stats:?}");

        let rolling_plans = prepare_patterns(&pats, MatchKernel::Rolling);
        let rolling_counters = ScanCounters::new();
        let rolling_rows = transform_set_plans_engine_counted(
            &set,
            &rolling_plans,
            false,
            true,
            &engine,
            Some(&rolling_counters),
        )
        .unwrap();
        let rolling_stats = rolling_counters.snapshot();
        assert_eq!(
            rolling_stats.stats_builds,
            (set.len() * pats.len()) as u64,
            "per-pattern path rebuilds stats K times per series"
        );

        // And the shared-stats rows are bit-identical to the per-pattern ones.
        assert_eq!(batched_rows, rolling_rows);
    }

    #[test]
    fn early_abandon_matches_exhaustive() {
        let series = bump(33, 120);
        let pats = vec![bump(4, 17), bump(2, 9)];
        let fast = transform_series(&series, &pats, false, true);
        let slow = transform_series(&series, &pats, false, false);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
