//! Trained-model persistence.
//!
//! A versioned, dependency-free text format: train once (possibly with the
//! expensive DIRECT parameter search), save, and classify later from the
//! saved patterns + SVM. Floats are written with Rust's shortest-roundtrip
//! `Display`, so save/load is bit-exact.
//!
//! ```text
//! RPM-MODEL v1
//! flags <rotation_invariant> <early_abandon>
//! sax <class> <window> <paa> <alpha>        (one per class)
//! pattern <class> <freq> <coverage> <window> <paa> <alpha> <len> <v...>
//! svm-classes <labels...>
//! svm-scaler-mean <v...>
//! svm-scaler-invsd <v...>
//! svm-weights <rows>
//! svm-row <v...>                             (one per class)
//! END
//! ```

use crate::candidates::Candidate;
use crate::model::RpmClassifier;
use rpm_ml::{LinearSvm, SvmExport};
use rpm_sax::SaxConfig;
use rpm_ts::Label;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised while loading a saved model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a v1 RPM model or is structurally broken.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Format(m) => write!(f, "model format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

impl RpmClassifier {
    /// Writes the trained model in the v1 text format.
    pub fn save(&self, mut writer: impl Write) -> std::io::Result<()> {
        let mut out = String::new();
        out.push_str("RPM-MODEL v1\n");
        let _ = writeln!(
            out,
            "flags {} {}",
            self.rotation_invariant as u8, self.early_abandon as u8
        );
        for (class, sax) in &self.per_class_sax {
            let _ = writeln!(
                out,
                "sax {class} {} {} {}",
                sax.window, sax.paa_size, sax.alphabet
            );
        }
        for p in &self.patterns {
            let _ = write!(
                out,
                "pattern {} {} {} {} {} {} {}",
                p.class,
                p.frequency,
                p.coverage,
                p.sax.window,
                p.sax.paa_size,
                p.sax.alphabet,
                p.values.len()
            );
            for v in &p.values {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        let svm = self.svm.export();
        out.push_str("svm-classes");
        for c in &svm.classes {
            let _ = write!(out, " {c}");
        }
        out.push('\n');
        out.push_str("svm-scaler-mean");
        for v in &svm.scaler_mean {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
        out.push_str("svm-scaler-invsd");
        for v in &svm.scaler_inv_sd {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
        let _ = writeln!(out, "svm-weights {}", svm.weights.len());
        for row in &svm.weights {
            out.push_str("svm-row");
            for v in row {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        out.push_str("END\n");
        writer.write_all(out.as_bytes())
    }

    /// Loads a model saved by [`RpmClassifier::save`].
    pub fn load(reader: impl Read) -> Result<Self, PersistError> {
        let mut lines = BufReader::new(reader).lines();
        let magic = lines.next().ok_or_else(|| format_err("empty stream"))??;
        if magic.trim() != "RPM-MODEL v1" {
            return Err(format_err(format!("bad magic line {magic:?}")));
        }

        let mut rotation_invariant = false;
        let mut early_abandon = true;
        let mut per_class_sax: BTreeMap<Label, SaxConfig> = BTreeMap::new();
        let mut patterns: Vec<Candidate> = Vec::new();
        let mut svm_classes: Option<Vec<usize>> = None;
        let mut scaler_mean: Option<Vec<f64>> = None;
        let mut scaler_inv_sd: Option<Vec<f64>> = None;
        let mut weights: Vec<Vec<f64>> = Vec::new();
        let mut expected_rows = 0usize;
        let mut saw_end = false;

        for line in lines {
            let line = line?;
            let mut f = line.split_whitespace();
            let Some(tag) = f.next() else { continue };
            match tag {
                "flags" => {
                    rotation_invariant = parse::<u8>(f.next(), "flags[0]")? != 0;
                    early_abandon = parse::<u8>(f.next(), "flags[1]")? != 0;
                }
                "sax" => {
                    let class = parse::<usize>(f.next(), "sax class")?;
                    let w = parse::<usize>(f.next(), "sax window")?;
                    let p = parse::<usize>(f.next(), "sax paa")?;
                    let a = parse::<usize>(f.next(), "sax alphabet")?;
                    per_class_sax.insert(class, SaxConfig::new(w, p, a));
                }
                "pattern" => {
                    let class = parse::<usize>(f.next(), "pattern class")?;
                    let frequency = parse::<usize>(f.next(), "pattern freq")?;
                    let coverage = parse::<usize>(f.next(), "pattern coverage")?;
                    let w = parse::<usize>(f.next(), "pattern window")?;
                    let p = parse::<usize>(f.next(), "pattern paa")?;
                    let a = parse::<usize>(f.next(), "pattern alphabet")?;
                    let len = parse::<usize>(f.next(), "pattern len")?;
                    let values: Vec<f64> = f
                        .map(|v| v.parse::<f64>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format_err(format!("pattern values: {e}")))?;
                    if values.len() != len {
                        return Err(format_err(format!(
                            "pattern declared {len} values, found {}",
                            values.len()
                        )));
                    }
                    patterns.push(Candidate {
                        class,
                        values,
                        frequency,
                        coverage,
                        sax: SaxConfig::new(w, p, a),
                    });
                }
                "svm-classes" => {
                    svm_classes = Some(
                        f.map(|v| v.parse::<usize>())
                            .collect::<Result<_, _>>()
                            .map_err(|e| format_err(format!("svm classes: {e}")))?,
                    );
                }
                "svm-scaler-mean" => scaler_mean = Some(parse_floats(f)?),
                "svm-scaler-invsd" => scaler_inv_sd = Some(parse_floats(f)?),
                "svm-weights" => {
                    expected_rows = parse::<usize>(f.next(), "svm rows")?;
                }
                "svm-row" => weights.push(parse_floats(f)?),
                "END" => {
                    saw_end = true;
                    break;
                }
                other => return Err(format_err(format!("unknown tag {other:?}"))),
            }
        }
        if !saw_end {
            return Err(format_err("truncated stream (no END)"));
        }
        if weights.len() != expected_rows {
            return Err(format_err(format!(
                "declared {expected_rows} weight rows, found {}",
                weights.len()
            )));
        }
        let svm = LinearSvm::import(SvmExport {
            classes: svm_classes.ok_or_else(|| format_err("missing svm-classes"))?,
            weights,
            scaler_mean: scaler_mean.ok_or_else(|| format_err("missing svm-scaler-mean"))?,
            scaler_inv_sd: scaler_inv_sd.ok_or_else(|| format_err("missing svm-scaler-invsd"))?,
        });
        let pattern_values: Vec<Vec<f64>> = patterns.iter().map(|p| p.values.clone()).collect();
        let n_patterns = pattern_values.len();
        Ok(RpmClassifier {
            patterns,
            pattern_values,
            svm,
            per_class_sax,
            rotation_invariant,
            early_abandon,
            // Training-run counters are not persisted; a loaded model
            // reports empty stats and starts a fresh usage window.
            cache_stats: crate::cache::CacheStats::default(),
            usage: crate::usage::PatternUsage::new(n_patterns),
        })
    }
}

fn parse<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, PersistError>
where
    T::Err: std::fmt::Display,
{
    field
        .ok_or_else(|| format_err(format!("missing field {what}")))?
        .parse::<T>()
        .map_err(|e| format_err(format!("{what}: {e}")))
}

fn parse_floats<'a>(f: impl Iterator<Item = &'a str>) -> Result<Vec<f64>, PersistError> {
    f.map(|v| v.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| format_err(format!("float list: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RpmConfig;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    use rpm_ts::Dataset;

    fn dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("p", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..10 {
                let mut s: Vec<f64> = (0..96).map(|_| 0.2 * (rng.gen::<f64>() - 0.5)).collect();
                let at = rng.gen_range(0usize..96 - 20);
                for i in 0..20 {
                    let t = std::f64::consts::TAU * i as f64 / 20.0;
                    s[at + i] += 3.0 * if class == 0 { t.sin() } else { -t.sin() };
                }
                d.push(s, class);
            }
        }
        d
    }

    fn trained() -> (RpmClassifier, Dataset) {
        let train = dataset(1);
        let config = RpmConfig::fixed(SaxConfig::new(20, 4, 4));
        (RpmClassifier::train(&train, &config).unwrap(), dataset(2))
    }

    #[test]
    fn roundtrip_preserves_predictions_exactly() {
        let (model, test) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = RpmClassifier::load(buf.as_slice()).unwrap();
        assert_eq!(
            model.predict_batch(&test.series),
            loaded.predict_batch(&test.series)
        );
        // Feature vectors must be bit-exact too (shortest-roundtrip floats).
        assert_eq!(
            model.transform(&test.series[0]),
            loaded.transform(&test.series[0])
        );
    }

    #[test]
    fn roundtrip_preserves_metadata() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = RpmClassifier::load(buf.as_slice()).unwrap();
        assert_eq!(model.patterns().len(), loaded.patterns().len());
        assert_eq!(model.sax_configs(), loaded.sax_configs());
        assert_eq!(
            model.is_rotation_invariant(),
            loaded.is_rotation_invariant()
        );
        for (a, b) in model.patterns().iter().zip(loaded.patterns()) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.frequency, b.frequency);
            assert_eq!(a.coverage, b.coverage);
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = RpmClassifier::load("NOT-A-MODEL\n".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let cut = buf.len() / 2;
        let err = RpmClassifier::load(&buf[..cut]).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
    }

    #[test]
    fn corrupted_pattern_count_is_rejected() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Break a declared pattern length.
        let broken = text.replacen("pattern 0", "pattern 0 9999", 1);
        assert!(RpmClassifier::load(broken.as_bytes()).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let text = "RPM-MODEL v1\nbogus 1 2 3\nEND\n";
        let err = RpmClassifier::load(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown tag"));
    }

    #[test]
    fn empty_stream_is_rejected() {
        assert!(RpmClassifier::load(&b""[..]).is_err());
    }
}
