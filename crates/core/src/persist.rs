//! Trained-model persistence.
//!
//! A versioned, dependency-free format: train once (possibly with the
//! expensive DIRECT parameter search), save, and classify later from the
//! saved patterns + SVM. Floats are written with Rust's shortest-roundtrip
//! `Display`, so save/load is bit-exact.
//!
//! ## v2 (current writer)
//!
//! The payload is split into length-prefixed, CRC32-guarded sections so a
//! loader can tell *which* part of a damaged file is corrupt instead of
//! failing with a generic parse error:
//!
//! ```text
//! RPM-MODEL v2
//! section flags <len> <crc32-hex>
//! <len payload bytes>
//! section sax <len> <crc32-hex>
//! section patterns <len> <crc32-hex>
//! section svm <len> <crc32-hex>
//! section profile <len> <crc32-hex>    (optional; drift reference)
//! checksum <crc32-hex>                 (over all payloads, in order)
//! END
//! ```
//!
//! Each section payload is the v1 line syntax for that portion of the
//! model, so the two formats share one line parser. A CRC mismatch loads
//! as [`PersistError::Corrupt`] naming the section; header damage is a
//! [`PersistError::Format`]. Loading never panics, whatever the bytes.
//!
//! The `profile` section holds the training-time drift reference
//! (`profile-class`/`profile-hist` lines rendered by
//! `rpm_obs::ReferenceProfile`). It is optional: files written before it
//! existed load fine and simply leave the model without a profile, so
//! serve-time drift detection reports `unavailable` for them.
//!
//! ## v1 (still read, written by [`RpmClassifier::save_v1`])
//!
//! ```text
//! RPM-MODEL v1
//! flags <rotation_invariant> <early_abandon>
//! sax <class> <window> <paa> <alpha>        (one per class)
//! pattern <class> <freq> <coverage> <window> <paa> <alpha> <len> <v...>
//! svm-classes <labels...>
//! svm-scaler-mean <v...>
//! svm-scaler-invsd <v...>
//! svm-weights <rows>
//! svm-row <v...>                             (one per class)
//! END
//! ```

use crate::candidates::Candidate;
use crate::model::RpmClassifier;
use rpm_ml::{LinearSvm, SvmExport};
use rpm_sax::SaxConfig;
use rpm_ts::Label;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read, Write};

/// Errors raised while loading a saved model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not an RPM model or is structurally broken (bad
    /// magic, damaged section header, truncation).
    Format(String),
    /// A v2 section's bytes fail their CRC32 — the file was damaged after
    /// writing, and `section` says where.
    Corrupt {
        /// Which section (`flags`, `sax`, `patterns`, `svm`, `profile`, or
        /// `trailer` for the whole-payload checksum) failed verification.
        section: String,
        /// What mismatched.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Format(m) => write!(f, "model format error: {m}"),
            Self::Corrupt { section, detail } => {
                write!(f, "model corrupt in section {section:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> PersistError {
    PersistError::Format(msg.into())
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), bitwise — the model files
/// are a few tens of KiB, so a lookup table isn't worth carrying.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What [`RpmClassifier::verify`] learned about a model stream.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Format version (1 or 2).
    pub version: u8,
    /// v2 sections as `(name, payload bytes)`; empty for v1.
    pub sections: Vec<(String, usize)>,
    /// Representative patterns in the model.
    pub patterns: usize,
    /// Classes the SVM separates.
    pub classes: usize,
    /// Whether the model was trained under an exhausted budget.
    pub degraded: bool,
    /// CRC-32 of the entire stream, as 8 hex digits — the model identity
    /// surfaced on `/healthz` ([`model_fingerprint`]).
    pub fingerprint: String,
    /// Training samples in the drift reference profile (0 when the model
    /// carries none).
    pub profile_samples: u64,
}

/// The model fingerprint surfaced by the serving path: CRC-32 of the
/// entire serialized stream, rendered as 8 hex digits.
pub fn model_fingerprint(bytes: &[u8]) -> String {
    format!("{:08x}", crc32(bytes))
}

/// Accumulator shared by the v1 and v2 readers: both formats use the same
/// line syntax, v2 just groups the lines into checksummed sections.
#[derive(Default)]
struct Parts {
    rotation_invariant: bool,
    early_abandon: bool,
    degraded: bool,
    per_class_sax: BTreeMap<Label, SaxConfig>,
    patterns: Vec<Candidate>,
    svm_classes: Option<Vec<usize>>,
    scaler_mean: Option<Vec<f64>>,
    scaler_inv_sd: Option<Vec<f64>>,
    weights: Vec<Vec<f64>>,
    expected_rows: usize,
    /// Raw `profile-*` lines, re-assembled and handed to
    /// `ReferenceProfile::parse` at finish (empty = no profile section).
    profile_lines: String,
}

impl Parts {
    fn new() -> Self {
        Self {
            early_abandon: true,
            ..Self::default()
        }
    }

    /// Applies one body line; returns `true` on the `END` sentinel.
    fn apply_line(&mut self, line: &str) -> Result<bool, PersistError> {
        let mut f = line.split_whitespace();
        let Some(tag) = f.next() else {
            return Ok(false);
        };
        match tag {
            "flags" => {
                self.rotation_invariant = parse::<u8>(f.next(), "flags[0]")? != 0;
                self.early_abandon = parse::<u8>(f.next(), "flags[1]")? != 0;
                // v1 wrote two flags; v2 appends `degraded`.
                if let Some(d) = f.next() {
                    self.degraded = parse::<u8>(Some(d), "flags[2]")? != 0;
                }
            }
            "sax" => {
                let class = parse::<usize>(f.next(), "sax class")?;
                let w = parse::<usize>(f.next(), "sax window")?;
                let p = parse::<usize>(f.next(), "sax paa")?;
                let a = parse::<usize>(f.next(), "sax alphabet")?;
                self.per_class_sax.insert(class, SaxConfig::new(w, p, a));
            }
            "pattern" => {
                let class = parse::<usize>(f.next(), "pattern class")?;
                let frequency = parse::<usize>(f.next(), "pattern freq")?;
                let coverage = parse::<usize>(f.next(), "pattern coverage")?;
                let w = parse::<usize>(f.next(), "pattern window")?;
                let p = parse::<usize>(f.next(), "pattern paa")?;
                let a = parse::<usize>(f.next(), "pattern alphabet")?;
                let len = parse::<usize>(f.next(), "pattern len")?;
                let values: Vec<f64> = f
                    .map(|v| v.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format_err(format!("pattern values: {e}")))?;
                if values.len() != len {
                    return Err(format_err(format!(
                        "pattern declared {len} values, found {}",
                        values.len()
                    )));
                }
                self.patterns.push(Candidate {
                    class,
                    values,
                    frequency,
                    coverage,
                    sax: SaxConfig::new(w, p, a),
                });
            }
            "svm-classes" => {
                self.svm_classes = Some(
                    f.map(|v| v.parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format_err(format!("svm classes: {e}")))?,
                );
            }
            "svm-scaler-mean" => self.scaler_mean = Some(parse_floats(f)?),
            "svm-scaler-invsd" => self.scaler_inv_sd = Some(parse_floats(f)?),
            "svm-weights" => {
                self.expected_rows = parse::<usize>(f.next(), "svm rows")?;
            }
            "svm-row" => self.weights.push(parse_floats(f)?),
            t if t.starts_with("profile-") => {
                // Profile lines are validated as a unit by
                // `ReferenceProfile::parse` in `finish`.
                self.profile_lines.push_str(line);
                self.profile_lines.push('\n');
            }
            "END" => return Ok(true),
            other => return Err(format_err(format!("unknown tag {other:?}"))),
        }
        Ok(false)
    }

    fn finish(self) -> Result<RpmClassifier, PersistError> {
        let profile = if self.profile_lines.is_empty() {
            None
        } else {
            let p = rpm_obs::ReferenceProfile::parse(&self.profile_lines)
                .map_err(|e| format_err(format!("profile: {e}")))?;
            (!p.is_empty()).then_some(p)
        };
        if self.weights.len() != self.expected_rows {
            return Err(format_err(format!(
                "declared {} weight rows, found {}",
                self.expected_rows,
                self.weights.len()
            )));
        }
        let svm = LinearSvm::import(SvmExport {
            classes: self
                .svm_classes
                .ok_or_else(|| format_err("missing svm-classes"))?,
            weights: self.weights,
            scaler_mean: self
                .scaler_mean
                .ok_or_else(|| format_err("missing svm-scaler-mean"))?,
            scaler_inv_sd: self
                .scaler_inv_sd
                .ok_or_else(|| format_err("missing svm-scaler-invsd"))?,
        });
        let pattern_values: Vec<Vec<f64>> =
            self.patterns.iter().map(|p| p.values.clone()).collect();
        let n_patterns = pattern_values.len();
        // The match kernel is an execution strategy, not part of the
        // model: loaded models always serve with the default (batched)
        // kernel, whatever they were trained with.
        let plans = crate::transform::prepare_patterns(&pattern_values, Default::default());
        let batched = crate::transform::batched_match(&plans);
        Ok(RpmClassifier {
            patterns: self.patterns,
            plans,
            batched,
            svm,
            per_class_sax: self.per_class_sax,
            rotation_invariant: self.rotation_invariant,
            early_abandon: self.early_abandon,
            degraded: self.degraded,
            // Training-run counters are not persisted; a loaded model
            // reports empty stats and starts a fresh usage window.
            cache_stats: crate::cache::CacheStats::default(),
            usage: crate::usage::PatternUsage::new(n_patterns),
            profile,
        })
    }
}

/// A parsed v2 section: name plus its raw payload bytes (CRC-verified).
struct Section<'a> {
    name: &'a str,
    payload: &'a [u8],
}

/// Walks a v2 byte stream (everything after the magic line), verifying
/// each section CRC and the trailer checksum.
fn split_v2_sections(mut rest: &[u8]) -> Result<Vec<Section<'_>>, PersistError> {
    let mut sections = Vec::new();
    let mut all_crc = 0xFFFF_FFFFu32; // incremental CRC over all payloads
    let mut saw_checksum = false;
    let mut saw_end = false;
    while !rest.is_empty() {
        let (line, after) = take_line(rest)?;
        if let Some(fields) = line.strip_prefix("section ") {
            let mut f = fields.split_whitespace();
            let name = f.next().ok_or_else(|| format_err("section without name"))?;
            if !matches!(name, "flags" | "sax" | "patterns" | "svm" | "profile") {
                return Err(format_err(format!("unknown section {name:?}")));
            }
            let len: usize = parse(f.next(), "section length")?;
            let crc = parse_hex(f.next(), "section crc")?;
            let payload = after
                .get(..len)
                .ok_or_else(|| format_err(format!("section {name:?} truncated")))?;
            let found = crc32(payload);
            if found != crc {
                return Err(PersistError::Corrupt {
                    section: name.to_string(),
                    detail: format!("crc32 {found:08x}, header says {crc:08x}"),
                });
            }
            for &b in payload {
                all_crc ^= u32::from(b);
                for _ in 0..8 {
                    let mask = (all_crc & 1).wrapping_neg();
                    all_crc = (all_crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            sections.push(Section { name, payload });
            rest = &after[len..];
        } else if let Some(fields) = line.strip_prefix("checksum ") {
            let crc = parse_hex(fields.split_whitespace().next(), "trailer crc")?;
            let found = !all_crc;
            if found != crc {
                return Err(PersistError::Corrupt {
                    section: "trailer".to_string(),
                    detail: format!("payload crc32 {found:08x}, trailer says {crc:08x}"),
                });
            }
            saw_checksum = true;
            rest = after;
        } else if line.trim() == "END" {
            saw_end = true;
            break;
        } else if line.trim().is_empty() {
            rest = after;
        } else {
            return Err(format_err(format!("unexpected v2 header line {line:?}")));
        }
    }
    if !saw_checksum {
        return Err(format_err("truncated stream (no checksum trailer)"));
    }
    if !saw_end {
        return Err(format_err("truncated stream (no END)"));
    }
    Ok(sections)
}

/// Splits the next `\n`-terminated line off `bytes`; the line itself must
/// be UTF-8 (section payloads, which may hold arbitrary damage, are never
/// routed through here — they are length-skipped).
fn take_line(bytes: &[u8]) -> Result<(&str, &[u8]), PersistError> {
    let (line, rest) = match bytes.iter().position(|&b| b == b'\n') {
        Some(i) => (&bytes[..i], &bytes[i + 1..]),
        None => (bytes, &bytes[bytes.len()..]),
    };
    let line =
        std::str::from_utf8(line).map_err(|_| format_err("header line is not valid UTF-8"))?;
    Ok((line, rest))
}

/// (parsed sections, format version, per-section name/size listing,
/// whole-stream fingerprint).
type LoadedParts = (Parts, u8, Vec<(String, usize)>, String);

impl RpmClassifier {
    /// The fingerprint this model would carry on disk: CRC-32 of its
    /// serialized v2 stream, as surfaced on `/healthz`. Serializes into
    /// memory — cheap for RPM models (a few KB of patterns), and the
    /// only way an in-memory model's identity matches its file's.
    pub fn current_fingerprint(&self) -> String {
        let mut buf = Vec::new();
        match self.save(&mut buf) {
            Ok(()) => model_fingerprint(&buf),
            // Writing to a Vec cannot fail; an armed persist.save fault
            // can. Identity stays unknown rather than wrong.
            Err(_) => "unknown".to_string(),
        }
    }

    /// Writes the trained model in the current (v2) sectioned format with
    /// per-section CRC32s and a whole-payload trailer checksum.
    pub fn save(&self, mut writer: impl Write) -> std::io::Result<()> {
        rpm_obs::fault::point("persist.save")?;
        let mut sections = vec![
            ("flags", self.render_flags()),
            ("sax", self.render_sax()),
            ("patterns", self.render_patterns()),
            ("svm", self.render_svm()),
        ];
        // The drift reference rides along as an optional trailing section;
        // readers that predate it skip nothing (it is simply absent from
        // older files, and its tag-prefixed lines keep the shared line
        // parser unambiguous).
        if let Some(profile) = self.profile.as_ref().filter(|p| !p.is_empty()) {
            sections.push(("profile", profile.render()));
        }
        let mut out = String::from("RPM-MODEL v2\n");
        let mut all = Vec::new();
        for (name, payload) in &sections {
            let bytes = payload.as_bytes();
            let _ = writeln!(out, "section {name} {} {:08x}", bytes.len(), crc32(bytes));
            out.push_str(payload);
            all.extend_from_slice(bytes);
        }
        let _ = writeln!(out, "checksum {:08x}", crc32(&all));
        out.push_str("END\n");
        writer.write_all(out.as_bytes())
    }

    /// Writes the legacy v1 single-stream format (kept so the v1 → v2
    /// compatibility path stays exercised; prefer [`RpmClassifier::save`]).
    pub fn save_v1(&self, mut writer: impl Write) -> std::io::Result<()> {
        rpm_obs::fault::point("persist.save")?;
        let mut out = String::from("RPM-MODEL v1\n");
        let _ = writeln!(
            out,
            "flags {} {}",
            self.rotation_invariant as u8, self.early_abandon as u8
        );
        out.push_str(&self.render_sax());
        out.push_str(&self.render_patterns());
        out.push_str(&self.render_svm());
        out.push_str("END\n");
        writer.write_all(out.as_bytes())
    }

    fn render_flags(&self) -> String {
        format!(
            "flags {} {} {}\n",
            self.rotation_invariant as u8, self.early_abandon as u8, self.degraded as u8
        )
    }

    fn render_sax(&self) -> String {
        let mut out = String::new();
        for (class, sax) in &self.per_class_sax {
            let _ = writeln!(
                out,
                "sax {class} {} {} {}",
                sax.window, sax.paa_size, sax.alphabet
            );
        }
        out
    }

    fn render_patterns(&self) -> String {
        let mut out = String::new();
        for p in &self.patterns {
            let _ = write!(
                out,
                "pattern {} {} {} {} {} {} {}",
                p.class,
                p.frequency,
                p.coverage,
                p.sax.window,
                p.sax.paa_size,
                p.sax.alphabet,
                p.values.len()
            );
            for v in &p.values {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        out
    }

    fn render_svm(&self) -> String {
        let svm = self.svm.export();
        let mut out = String::from("svm-classes");
        for c in &svm.classes {
            let _ = write!(out, " {c}");
        }
        out.push('\n');
        out.push_str("svm-scaler-mean");
        for v in &svm.scaler_mean {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
        out.push_str("svm-scaler-invsd");
        for v in &svm.scaler_inv_sd {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
        let _ = writeln!(out, "svm-weights {}", svm.weights.len());
        for row in &svm.weights {
            out.push_str("svm-row");
            for v in row {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        out
    }

    /// Loads a model saved by [`RpmClassifier::save`] (v2) or
    /// [`RpmClassifier::save_v1`]; the version is auto-detected from the
    /// magic line.
    pub fn load(reader: impl Read) -> Result<Self, PersistError> {
        Self::load_parts(reader)?.0.finish()
    }

    /// Verifies a model stream without constructing a classifier-sized
    /// answer: checks every section CRC (v2) and fully parses the body,
    /// reporting what the file holds. A damaged file yields the same
    /// [`PersistError`] that [`RpmClassifier::load`] would — including
    /// [`PersistError::Corrupt`] naming the broken section.
    pub fn verify(reader: impl Read) -> Result<VerifyReport, PersistError> {
        let (parts, version, sections, fingerprint) = Self::load_parts(reader)?;
        let model = parts.finish()?;
        Ok(VerifyReport {
            version,
            sections,
            patterns: model.patterns.len(),
            classes: model.svm.export().classes.len(),
            degraded: model.degraded,
            fingerprint,
            profile_samples: model.profile.as_ref().map_or(0, |p| p.total_samples()),
        })
    }

    fn load_parts(mut reader: impl Read) -> Result<LoadedParts, PersistError> {
        rpm_obs::fault::point("persist.load")?;
        let mut buf = Vec::new();
        reader.read_to_end(&mut buf)?;
        let fingerprint = model_fingerprint(&buf);
        let (magic, rest) = take_line(&buf).map_err(|_| format_err("bad magic line"))?;
        let mut parts = Parts::new();
        match magic.trim() {
            "RPM-MODEL v1" => {
                let body = std::str::from_utf8(rest)
                    .map_err(|_| format_err("v1 stream is not valid UTF-8"))?;
                let mut saw_end = false;
                for line in body.lines() {
                    if parts.apply_line(line)? {
                        saw_end = true;
                        break;
                    }
                }
                if !saw_end {
                    return Err(format_err("truncated stream (no END)"));
                }
                Ok((parts, 1, Vec::new(), fingerprint))
            }
            "RPM-MODEL v2" => {
                let sections = split_v2_sections(rest)?;
                let mut summary = Vec::with_capacity(sections.len());
                for section in sections {
                    // CRC already passed, so the payload is the exact
                    // bytes the writer produced — valid UTF-8 v1 lines.
                    let text = std::str::from_utf8(section.payload).map_err(|_| {
                        format_err(format!("section {:?} is not valid UTF-8", section.name))
                    })?;
                    for line in text.lines() {
                        if parts.apply_line(line)? {
                            return Err(format_err(format!(
                                "section {:?} holds an END sentinel",
                                section.name
                            )));
                        }
                    }
                    summary.push((section.name.to_string(), section.payload.len()));
                }
                Ok((parts, 2, summary, fingerprint))
            }
            other => Err(format_err(format!("bad magic line {other:?}"))),
        }
    }
}

fn parse<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, PersistError>
where
    T::Err: std::fmt::Display,
{
    field
        .ok_or_else(|| format_err(format!("missing field {what}")))?
        .parse::<T>()
        .map_err(|e| format_err(format!("{what}: {e}")))
}

fn parse_hex(field: Option<&str>, what: &str) -> Result<u32, PersistError> {
    let s = field.ok_or_else(|| format_err(format!("missing field {what}")))?;
    u32::from_str_radix(s, 16).map_err(|e| format_err(format!("{what}: {e}")))
}

fn parse_floats<'a>(f: impl Iterator<Item = &'a str>) -> Result<Vec<f64>, PersistError> {
    f.map(|v| v.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| format_err(format!("float list: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RpmConfig;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    use rpm_ts::Dataset;

    fn dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("p", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..10 {
                let mut s: Vec<f64> = (0..96).map(|_| 0.2 * (rng.gen::<f64>() - 0.5)).collect();
                let at = rng.gen_range(0usize..96 - 20);
                for i in 0..20 {
                    let t = std::f64::consts::TAU * i as f64 / 20.0;
                    s[at + i] += 3.0 * if class == 0 { t.sin() } else { -t.sin() };
                }
                d.push(s, class);
            }
        }
        d
    }

    fn trained() -> (RpmClassifier, Dataset) {
        let train = dataset(1);
        let config = RpmConfig::fixed(SaxConfig::new(20, 4, 4));
        (RpmClassifier::train(&train, &config).unwrap(), dataset(2))
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_predictions_exactly() {
        let (model, test) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = RpmClassifier::load(buf.as_slice()).unwrap();
        assert_eq!(
            model.predict_batch(&test.series),
            loaded.predict_batch(&test.series)
        );
        // Feature vectors must be bit-exact too (shortest-roundtrip floats).
        assert_eq!(
            model.transform(&test.series[0]),
            loaded.transform(&test.series[0])
        );
    }

    #[test]
    fn roundtrip_preserves_metadata() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = RpmClassifier::load(buf.as_slice()).unwrap();
        assert_eq!(model.patterns().len(), loaded.patterns().len());
        assert_eq!(model.sax_configs(), loaded.sax_configs());
        assert!(model.reference_profile().is_some());
        assert_eq!(model.reference_profile(), loaded.reference_profile());
        assert_eq!(
            model.is_rotation_invariant(),
            loaded.is_rotation_invariant()
        );
        assert_eq!(model.is_degraded(), loaded.is_degraded());
        for (a, b) in model.patterns().iter().zip(loaded.patterns()) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.frequency, b.frequency);
            assert_eq!(a.coverage, b.coverage);
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn v1_models_still_load() {
        let (model, test) = trained();
        let mut v1 = Vec::new();
        model.save_v1(&mut v1).unwrap();
        assert!(v1.starts_with(b"RPM-MODEL v1\n"));
        let loaded = RpmClassifier::load(v1.as_slice()).unwrap();
        assert_eq!(
            model.predict_batch(&test.series),
            loaded.predict_batch(&test.series)
        );
        assert!(
            !loaded.is_degraded(),
            "v1 has no degraded flag; defaults off"
        );
        // And a v1 load re-saved as v2 still answers identically.
        let mut v2 = Vec::new();
        loaded.save(&mut v2).unwrap();
        let reloaded = RpmClassifier::load(v2.as_slice()).unwrap();
        assert_eq!(
            model.predict_batch(&test.series),
            reloaded.predict_batch(&test.series)
        );
    }

    #[test]
    fn verify_reports_sections_and_contents() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let report = RpmClassifier::verify(buf.as_slice()).unwrap();
        assert_eq!(report.version, 2);
        let names: Vec<&str> = report.sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["flags", "sax", "patterns", "svm", "profile"]);
        assert_eq!(report.patterns, model.patterns().len());
        assert_eq!(report.classes, 2);
        assert!(!report.degraded);
        assert_eq!(report.fingerprint, model_fingerprint(&buf));
        assert_eq!(report.fingerprint.len(), 8);
        // One profile sample per training series.
        assert_eq!(report.profile_samples, 20);

        let mut v1 = Vec::new();
        model.save_v1(&mut v1).unwrap();
        let report = RpmClassifier::verify(v1.as_slice()).unwrap();
        assert_eq!(report.version, 1);
        assert!(report.sections.is_empty());
        assert_eq!(report.profile_samples, 0, "v1 never carries a profile");
    }

    #[test]
    fn profileless_v2_models_still_load() {
        // A model whose profile was stripped stands in for files written
        // by the pre-profile v2 writer: the section is simply absent.
        let (model, test) = trained();
        let mut bare = model.clone();
        bare.profile = None;
        let mut buf = Vec::new();
        bare.save(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(!text.contains("section profile"));
        let loaded = RpmClassifier::load(buf.as_slice()).unwrap();
        assert!(loaded.reference_profile().is_none());
        assert_eq!(
            model.predict_batch(&test.series),
            loaded.predict_batch(&test.series)
        );
        let report = RpmClassifier::verify(buf.as_slice()).unwrap();
        assert_eq!(report.profile_samples, 0);
    }

    #[test]
    fn corrupt_profile_lines_are_rejected() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save_v1(&mut buf).unwrap();
        // v1 has no checksums, so a bogus profile line reaches the parser.
        let text = String::from_utf8(buf).unwrap();
        let broken = text.replace("END\n", "profile-hist 0 bogus_metric 0:1\nEND\n");
        let err = RpmClassifier::load(broken.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("profile"), "{err}");
    }

    #[test]
    fn single_flipped_byte_names_the_corrupt_section() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        // Flip one byte inside the patterns section payload: find the
        // header, then damage a byte a few positions into the payload.
        let header_at = text.find("section patterns").unwrap();
        let payload_at = text[header_at..].find('\n').unwrap() + header_at + 1;
        let mut bad = buf.clone();
        bad[payload_at + 10] ^= 0x01;
        match RpmClassifier::load(bad.as_slice()) {
            Err(PersistError::Corrupt { section, .. }) => assert_eq!(section, "patterns"),
            other => panic!("expected Corrupt{{patterns}}, got {other:?}"),
        }
        // verify() reports the same place.
        let mut bad2 = buf;
        bad2[payload_at + 10] ^= 0x01;
        match RpmClassifier::verify(bad2.as_slice()) {
            Err(PersistError::Corrupt { section, .. }) => assert_eq!(section, "patterns"),
            other => panic!("expected Corrupt{{patterns}}, got {other:?}"),
        }
    }

    #[test]
    fn flipping_any_byte_errors_and_never_panics() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        // Exhaustive over a stride (files are tens of KiB; every 11th byte
        // still hits every section and every header many times over).
        // XOR with 0x01 so the decoded value always changes (0x20 would
        // only toggle ASCII case, and hex parsing is case-insensitive).
        for at in (0..buf.len()).step_by(11) {
            let mut bad = buf.clone();
            bad[at] ^= 0x01;
            match RpmClassifier::load(bad.as_slice()) {
                // A flip inside a payload is caught by its section CRC; a
                // flip anywhere in a header line (magic, section name,
                // length, crc, trailer) breaks parsing or the CRC match.
                Err(_) => {}
                Ok(_) => panic!("flipped byte {at} loaded cleanly"),
            }
        }
    }

    #[test]
    fn truncation_at_any_point_errors_and_never_panics() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        // Up to len-2: dropping only the final newline leaves a complete
        // `END` sentinel (take_line accepts an unterminated last line), and
        // every payload is still CRC-verified — that is a complete model,
        // not a truncation.
        for len in (0..buf.len().saturating_sub(1)).step_by(13) {
            assert!(
                RpmClassifier::load(&buf[..len]).is_err(),
                "truncation to {len} bytes loaded cleanly"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = RpmClassifier::load("NOT-A-MODEL\n".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let cut = buf.len() / 2;
        let err = RpmClassifier::load(&buf[..cut]).unwrap_err();
        assert!(
            matches!(err, PersistError::Format(_) | PersistError::Corrupt { .. }),
            "{err}"
        );
    }

    #[test]
    fn corrupted_pattern_count_is_rejected() {
        let (model, _) = trained();
        let mut buf = Vec::new();
        model.save_v1(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Break a declared pattern length (v1 has no checksum, so this
        // exercises the structural validation).
        let broken = text.replacen("pattern 0", "pattern 0 9999", 1);
        assert!(RpmClassifier::load(broken.as_bytes()).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let text = "RPM-MODEL v1\nbogus 1 2 3\nEND\n";
        let err = RpmClassifier::load(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown tag"));
    }

    #[test]
    fn empty_stream_is_rejected() {
        assert!(RpmClassifier::load(&b""[..]).is_err());
    }
}
