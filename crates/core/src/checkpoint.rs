//! Versioned checkpoint file for the parameter search.
//!
//! Training with `RpmConfig { checkpoint: Some(path) }` appends one
//! line per completed combination evaluation; a later run pointed at
//! the same file preloads those scores into the evaluation cache and
//! re-runs only the missing combinations. Cached scores are pure
//! functions of `(dataset, config, SaxConfig)` and are serialized with
//! shortest-roundtrip float formatting, so a resumed search selects
//! bit-identical parameters to an uninterrupted one.
//!
//! Format (line-oriented text, one fact per line):
//!
//! ```text
//! RPM-CHECKPOINT v1
//! context <fingerprint-hex>
//! eval <window> <paa> <alphabet> none
//! eval <window> <paa> <alphabet> <macro-f> <class>:<f> ...
//! ```
//!
//! The `context` fingerprint hashes the dataset and every config knob
//! that feeds a combination's score (seed, splits, γ, τ, SVM/CFS/bisect
//! settings — *not* the search strategy, so a grid resume can reuse a
//! DIRECT run's scores). Opening a checkpoint written under a different
//! context is refused with [`CheckpointError::Mismatch`] rather than
//! silently producing a model from someone else's scores.
//!
//! Crash safety: entries are appended and flushed as they complete. A
//! process killed mid-append leaves at most one torn final line, which
//! [`Checkpoint::open`] drops (the file is rewritten compacted on open,
//! so the next append starts on a clean line boundary). A checkpoint
//! *write* failure — e.g. a full disk, or an armed `checkpoint.write`
//! fault — degrades to a one-time warning; training itself never fails
//! because progress could not be saved.

use crate::cache::EvalValue;
use crate::config::RpmConfig;
use rpm_sax::SaxConfig;
use rpm_ts::{Dataset, Label};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

const MAGIC: &str = "RPM-CHECKPOINT v1";

/// Why a checkpoint could not be opened or parsed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file exists but is not a readable v1 checkpoint.
    Format(String),
    /// The file is a valid checkpoint for a *different* dataset/config.
    Mismatch {
        /// Fingerprint of the current training context.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Format(msg) => write!(f, "invalid checkpoint: {msg}"),
            Self::Mismatch { expected, found } => write!(
                f,
                "checkpoint context mismatch: file was written for a different \
                 dataset/config (expected {expected:016x}, found {found:016x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// An open checkpoint file, appended to as evaluations complete.
#[derive(Debug)]
pub struct Checkpoint {
    file: Mutex<File>,
    write_failed: AtomicBool,
}

impl Checkpoint {
    /// Opens (or creates) the checkpoint at `path` for the training
    /// context identified by `fingerprint`, returning the completed
    /// evaluations recorded so far. The file is rewritten compacted —
    /// deduplicated, torn tail line dropped — before appending resumes.
    pub(crate) fn open(
        path: &Path,
        fingerprint: u64,
    ) -> Result<(Self, Vec<(SaxConfig, EvalValue)>), CheckpointError> {
        rpm_obs::fault::point("checkpoint.load")?;
        let entries = match std::fs::read_to_string(path) {
            Ok(text) => parse(&text, fingerprint)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let mut file = File::create(path)?;
        writeln!(file, "{MAGIC}")?;
        writeln!(file, "context {fingerprint:016x}")?;
        for (sax, value) in &entries {
            write_entry(&mut file, sax, value)?;
        }
        file.flush()?;
        Ok((
            Self {
                file: Mutex::new(file),
                write_failed: AtomicBool::new(false),
            },
            entries,
        ))
    }

    /// Appends one completed evaluation. Failures degrade to a one-time
    /// stderr warning — losing checkpoint progress must not fail the
    /// training run that is producing it.
    pub(crate) fn record(&self, sax: &SaxConfig, value: &EvalValue) {
        if let Err(e) = self.try_record(sax, value) {
            if !self.write_failed.swap(true, Ordering::Relaxed) {
                eprintln!("[rpm] checkpoint write failed (training continues): {e}");
            }
        }
    }

    fn try_record(&self, sax: &SaxConfig, value: &EvalValue) -> std::io::Result<()> {
        rpm_obs::fault::point("checkpoint.write")?;
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        write_entry(&mut *file, sax, value)?;
        file.flush()
    }
}

fn write_entry(w: &mut impl Write, sax: &SaxConfig, value: &EvalValue) -> std::io::Result<()> {
    write!(w, "eval {} {} {}", sax.window, sax.paa_size, sax.alphabet)?;
    match value {
        None => writeln!(w, " none"),
        Some((per_class, macro_f)) => {
            write!(w, " {macro_f}")?;
            for (class, f) in per_class {
                write!(w, " {class}:{f}")?;
            }
            writeln!(w)
        }
    }
}

fn parse(text: &str, fingerprint: u64) -> Result<Vec<(SaxConfig, EvalValue)>, CheckpointError> {
    let bad = |msg: String| CheckpointError::Format(msg);
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, MAGIC)) => {}
        Some((_, other)) if other.starts_with("RPM-CHECKPOINT") => {
            return Err(bad(format!("unsupported version {other:?}")))
        }
        _ => return Err(bad("missing RPM-CHECKPOINT header".to_string())),
    }
    let found = match lines.next() {
        Some((_, line)) => line
            .strip_prefix("context ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| bad(format!("bad context line {line:?}")))?,
        None => return Err(bad("missing context line".to_string())),
    };
    if found != fingerprint {
        return Err(CheckpointError::Mismatch {
            expected: fingerprint,
            found,
        });
    }

    let body: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
    let mut order: Vec<SaxConfig> = Vec::new();
    let mut values: HashMap<SaxConfig, EvalValue> = HashMap::new();
    for (i, (lineno, line)) in body.iter().enumerate() {
        match parse_entry(line) {
            Ok((sax, value)) => {
                if values.insert(sax, value).is_none() {
                    order.push(sax);
                }
            }
            // A torn final line is the footprint of a crashed append:
            // drop it and resume. Anywhere else it is corruption.
            Err(msg) if i + 1 == body.len() => {
                eprintln!(
                    "[rpm] dropping torn checkpoint tail (line {}): {msg}",
                    lineno + 1
                );
            }
            Err(msg) => return Err(bad(format!("line {}: {msg}", lineno + 1))),
        }
    }
    Ok(order
        .into_iter()
        .map(|sax| {
            let value = values.remove(&sax).unwrap_or(None);
            (sax, value)
        })
        .collect())
}

fn parse_entry(line: &str) -> Result<(SaxConfig, EvalValue), String> {
    let mut fields = line.split_whitespace();
    if fields.next() != Some("eval") {
        return Err(format!("expected an eval line, got {line:?}"));
    }
    let mut dim = || -> Result<usize, String> {
        fields
            .next()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .ok_or_else(|| format!("bad SAX geometry in {line:?}"))
    };
    let (window, paa, alphabet) = (dim()?, dim()?, dim()?);
    let sax = SaxConfig::new(window, paa.min(window), alphabet.clamp(2, 12));
    if sax.window != window || sax.paa_size != paa || sax.alphabet != alphabet {
        return Err(format!("out-of-range SAX geometry in {line:?}"));
    }
    let value = match fields.next() {
        Some("none") => None,
        Some(macro_field) => {
            let macro_f: f64 = macro_field
                .parse()
                .map_err(|_| format!("bad macro F-measure in {line:?}"))?;
            let mut per_class: BTreeMap<Label, f64> = BTreeMap::new();
            for pair in fields.by_ref() {
                let (class, f) = pair
                    .split_once(':')
                    .ok_or_else(|| format!("bad class:score pair {pair:?}"))?;
                let class: Label = class
                    .parse()
                    .map_err(|_| format!("bad class label {class:?}"))?;
                let f: f64 = f.parse().map_err(|_| format!("bad score {f:?}"))?;
                per_class.insert(class, f);
            }
            Some((per_class, macro_f))
        }
        None => return Err(format!("missing score in {line:?}")),
    };
    if fields.next().is_some() {
        return Err(format!("trailing fields in {line:?}"));
    }
    Ok((sax, value))
}

/// Fingerprints everything a combination score depends on: the dataset
/// (labels + exact series bits) and every scoring-relevant config knob.
/// Deliberately excludes the search strategy, thread count, cache
/// policy, budget, and observability settings — none of them change
/// what a combination scores, so checkpoints stay reusable across them.
pub(crate) fn context_fingerprint(train: &Dataset, config: &RpmConfig) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    mix(config.seed);
    mix(config.n_validation_splits as u64);
    mix(config.validation_train_fraction.to_bits());
    mix(config.gamma.to_bits());
    mix(config.tau_percentile.to_bits());
    mix(u64::from(config.numerosity_reduction));
    mix(u64::from(config.use_medoid));
    mix(u64::from(config.rotation_invariant));
    mix(u64::from(config.early_abandon));
    mix(config.kernel as u64);
    mix(config.max_occurrences_per_rule as u64);
    mix(config.max_candidates as u64);
    mix(config.grammar as u64);
    // Structured sub-configs: their Debug forms list every field, which
    // is exactly the coverage a fingerprint wants.
    for byte in format!("{:?}|{:?}|{:?}", config.bisect, config.svm, config.cfs).into_bytes() {
        mix(u64::from(byte));
    }
    mix(train.series.len() as u64);
    for (series, label) in train.series.iter().zip(&train.labels) {
        mix(*label as u64);
        mix(series.len() as u64);
        for v in series {
            mix(v.to_bits());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sax(w: usize, p: usize, a: usize) -> SaxConfig {
        SaxConfig::new(w, p, a)
    }

    fn some_value() -> EvalValue {
        let mut per_class = BTreeMap::new();
        per_class.insert(0usize, 0.9375);
        per_class.insert(1usize, 1.0 / 3.0);
        Some((per_class, 0.1 + 0.2)) // deliberately non-terminating bits
    }

    #[test]
    fn round_trips_entries_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("rpm-ckpt-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        let _ = std::fs::remove_file(&path);

        let (ckpt, entries) = Checkpoint::open(&path, 0xABCD).unwrap();
        assert!(entries.is_empty());
        ckpt.record(&sax(16, 4, 4), &some_value());
        ckpt.record(&sax(24, 6, 5), &None);
        drop(ckpt);

        let (_, restored) = Checkpoint::open(&path, 0xABCD).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[0].0, sax(16, 4, 4));
        let (per_class, macro_f) = restored[0].1.as_ref().expect("scored entry");
        let (want_class, want_macro) = some_value().unwrap();
        assert_eq!(macro_f.to_bits(), want_macro.to_bits(), "bit-exact floats");
        assert_eq!(per_class.len(), want_class.len());
        for (k, v) in per_class {
            assert_eq!(v.to_bits(), want_class[k].to_bits());
        }
        assert_eq!(restored[1], (sax(24, 6, 5), None));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_context_is_refused() {
        let dir = std::env::temp_dir().join(format!("rpm-ckpt-mm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.ckpt");
        let _ = std::fs::remove_file(&path);
        drop(Checkpoint::open(&path, 1).unwrap());
        let err = Checkpoint::open(&path, 2).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Mismatch {
                expected: 2,
                found: 1
            }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_compacted_away() {
        let dir = std::env::temp_dir().join(format!("rpm-ckpt-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.ckpt");
        let _ = std::fs::remove_file(&path);
        let (ckpt, _) = Checkpoint::open(&path, 7).unwrap();
        ckpt.record(&sax(16, 4, 4), &some_value());
        drop(ckpt);
        // Simulate a crash mid-append: a half-written final line.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "eval 24 6").unwrap();
        drop(f);

        let (_, entries) = Checkpoint::open(&path, 7).unwrap();
        assert_eq!(entries.len(), 1, "torn tail dropped");
        // The rewrite compacted the file: reopening finds no torn line.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "clean line boundary: {text:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_in_the_middle_is_a_format_error() {
        let dir = std::env::temp_dir().join(format!("rpm-ckpt-mid-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.ckpt");
        std::fs::write(
            &path,
            format!("{MAGIC}\ncontext 0000000000000007\neval bogus line\neval 16 4 4 none\n"),
        )
        .unwrap();
        let err = Checkpoint::open(&path, 7).unwrap_err();
        assert!(
            matches!(&err, CheckpointError::Format(msg) if msg.contains("line 3")),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unsupported_versions_and_garbage_are_rejected() {
        assert!(matches!(
            parse("RPM-CHECKPOINT v9\ncontext 00\n", 0),
            Err(CheckpointError::Format(msg)) if msg.contains("version")
        ));
        assert!(matches!(
            parse("not a checkpoint", 0),
            Err(CheckpointError::Format(_))
        ));
        assert!(matches!(
            parse(MAGIC, 0),
            Err(CheckpointError::Format(msg)) if msg.contains("context")
        ));
    }

    #[test]
    fn duplicate_entries_keep_the_last_value() {
        let text =
            format!("{MAGIC}\ncontext 0000000000000001\neval 16 4 4 none\neval 16 4 4 0.5 0:0.5\n");
        let entries = parse(&text, 1).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].1.is_some(), "later line wins");
    }

    #[test]
    fn fingerprint_tracks_data_and_scoring_knobs_only() {
        let mut d = Dataset::new("fp", Vec::new(), Vec::new());
        d.push(vec![1.0, 2.0, 3.0], 0);
        d.push(vec![2.0, 1.0, 0.0], 1);
        let config = RpmConfig::default();
        let base = context_fingerprint(&d, &config);
        assert_eq!(base, context_fingerprint(&d, &config), "deterministic");

        let reseeded = RpmConfig {
            seed: 1,
            ..config.clone()
        };
        assert_ne!(base, context_fingerprint(&d, &reseeded));

        let rethreaded = RpmConfig {
            n_threads: 8,
            cache: false,
            ..config.clone()
        };
        assert_eq!(
            base,
            context_fingerprint(&d, &rethreaded),
            "execution knobs do not invalidate checkpoints"
        );

        let mut d2 = d.clone();
        d2.series[0][0] += 1e-9;
        assert_ne!(base, context_fingerprint(&d2, &config));
    }
}
