//! Per-pattern utilization tracking for the serving path.
//!
//! RPM's efficiency case rests on classifying with a *small* set of K
//! representative patterns, which makes "is every pattern earning its
//! keep?" a first-class production question. [`PatternUsage`] rides on
//! the classifier and — only while observability is enabled — counts,
//! per pattern, how often it was the closest match (the feature-space
//! argmin, i.e. the pattern that dominates the decision) and accumulates
//! its match distances. A pattern whose argmin share stays at zero over
//! real traffic is dead weight: it costs a full sliding-window distance
//! scan per prediction and contributes nothing.
//!
//! The counters are relaxed atomics, so tracking is thread-safe across
//! `predict_batch_with` workers and adds no synchronization to the
//! hot path. Like every `rpm-obs` probe, tracking never feeds back into
//! the computation: predictions are bit-identical with tracking on or
//! off. Usage is process-local serving state — it is deliberately not
//! persisted with the model.

use std::sync::atomic::{AtomicU64, Ordering};

/// Distances are accumulated in millionths so they fit atomic integers
/// (feature distances are small non-negative reals).
const DIST_SCALE: f64 = 1e6;

/// Thread-safe per-pattern usage accumulators (one slot per pattern).
#[derive(Default)]
pub struct PatternUsage {
    argmin: Vec<AtomicU64>,
    dist_micros: Vec<AtomicU64>,
    observations: AtomicU64,
}

/// Snapshot of one pattern's accumulated usage.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternStats {
    /// Pattern index (column in the feature transform).
    pub index: usize,
    /// How often this pattern was the feature-space argmin.
    pub argmin: u64,
    /// Mean match distance of this pattern across all observations.
    pub mean_distance: f64,
}

impl PatternUsage {
    /// Zeroed accumulators for `n` patterns.
    pub fn new(n: usize) -> Self {
        Self {
            argmin: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dist_micros: (0..n).map(|_| AtomicU64::new(0)).collect(),
            observations: AtomicU64::new(0),
        }
    }

    /// Number of pattern slots.
    pub fn len(&self) -> usize {
        self.argmin.len()
    }

    /// Whether there are no pattern slots.
    pub fn is_empty(&self) -> bool {
        self.argmin.is_empty()
    }

    /// Predictions observed since construction or the last reset.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// Records one prediction's feature vector (the per-pattern match
    /// distances): bumps the argmin pattern, accumulates every distance,
    /// and feeds the global `predict.match_distance` histogram with the
    /// winning distance. Callers gate on `rpm_obs::enabled()`.
    pub fn note(&self, features: &[f64]) {
        if features.is_empty() || features.len() != self.argmin.len() {
            return;
        }
        self.observations.fetch_add(1, Ordering::Relaxed);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (k, &d) in features.iter().enumerate() {
            let micros = (d.max(0.0) * DIST_SCALE) as u64;
            self.dist_micros[k].fetch_add(micros, Ordering::Relaxed);
            if d < best_d {
                best_d = d;
                best = k;
            }
        }
        self.argmin[best].fetch_add(1, Ordering::Relaxed);
        rpm_obs::metrics()
            .predict_match_distance
            .observe((best_d.max(0.0) * DIST_SCALE) as u64);
    }

    /// Snapshots every pattern's stats, in pattern order.
    pub fn stats(&self) -> Vec<PatternStats> {
        let n_obs = self.observations();
        self.argmin
            .iter()
            .zip(&self.dist_micros)
            .enumerate()
            .map(|(index, (a, d))| PatternStats {
                index,
                argmin: a.load(Ordering::Relaxed),
                mean_distance: if n_obs == 0 {
                    0.0
                } else {
                    d.load(Ordering::Relaxed) as f64 / DIST_SCALE / n_obs as f64
                },
            })
            .collect()
    }

    /// Zeroes every accumulator (e.g. between traffic windows).
    pub fn reset(&self) {
        self.observations.store(0, Ordering::Relaxed);
        for a in &self.argmin {
            a.store(0, Ordering::Relaxed);
        }
        for d in &self.dist_micros {
            d.store(0, Ordering::Relaxed);
        }
    }
}

// The classifier derives Clone; a clone starts its own usage window
// (values are snapshotted, not shared).
impl Clone for PatternUsage {
    fn clone(&self) -> Self {
        let cloned = Self::new(self.len());
        cloned
            .observations
            .store(self.observations(), Ordering::Relaxed);
        for (dst, src) in cloned.argmin.iter().zip(&self.argmin) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (dst, src) in cloned.dist_micros.iter().zip(&self.dist_micros) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        cloned
    }
}

impl std::fmt::Debug for PatternUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatternUsage")
            .field("patterns", &self.len())
            .field("observations", &self.observations())
            .finish()
    }
}

/// Renders usage stats as the model-summary table shown by
/// `rpm-cli classify` (sorted by argmin share, dead patterns flagged).
pub fn render_usage(stats: &[PatternStats], classes: &[usize]) -> String {
    use std::fmt::Write as _;
    let total: u64 = stats.iter().map(|s| s.argmin).sum();
    let mut out = String::new();
    if total == 0 {
        let _ = writeln!(out, "pattern utilization: no predictions observed");
        return out;
    }
    let _ = writeln!(
        out,
        "pattern utilization ({total} predictions; argmin = closest match):"
    );
    let mut order: Vec<&PatternStats> = stats.iter().collect();
    order.sort_by(|a, b| b.argmin.cmp(&a.argmin).then(a.index.cmp(&b.index)));
    for s in order {
        let class = classes.get(s.index).copied().unwrap_or(0);
        let share = 100.0 * s.argmin as f64 / total as f64;
        let flag = if s.argmin == 0 { "  (unused)" } else { "" };
        let _ = writeln!(
            out,
            "  pattern {:>3} (class {class}): argmin {:>6} ({share:5.1}%), mean distance {:.4}{flag}",
            s.index, s.argmin, s.mean_distance
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn argmin_and_mean_distance_accumulate() {
        let usage = PatternUsage::new(3);
        usage.note(&[0.5, 0.1, 0.9]);
        usage.note(&[0.2, 0.4, 0.6]);
        usage.note(&[0.3, 0.1, 0.8]);
        let stats = usage.stats();
        assert_eq!(usage.observations(), 3);
        assert_eq!(stats[0].argmin, 1);
        assert_eq!(stats[1].argmin, 2);
        assert_eq!(stats[2].argmin, 0);
        assert!((stats[0].mean_distance - (0.5 + 0.2 + 0.3) / 3.0).abs() < 1e-4);
        assert!((stats[2].mean_distance - (0.9 + 0.6 + 0.8) / 3.0).abs() < 1e-4);
    }

    #[test]
    fn reset_and_clone_snapshot() {
        let usage = PatternUsage::new(2);
        usage.note(&[0.1, 0.2]);
        let cloned = usage.clone();
        usage.reset();
        assert_eq!(usage.observations(), 0);
        assert_eq!(usage.stats()[0].argmin, 0);
        // The clone kept the pre-reset values.
        assert_eq!(cloned.observations(), 1);
        assert_eq!(cloned.stats()[0].argmin, 1);
    }

    #[test]
    fn render_flags_unused_patterns() {
        let usage = PatternUsage::new(2);
        usage.note(&[0.1, 0.9]);
        let text = render_usage(&usage.stats(), &[0, 1]);
        assert!(text.contains("pattern   0"), "{text}");
        assert!(text.contains("(unused)"), "{text}");
    }

    #[test]
    fn empty_usage_renders_placeholder() {
        let usage = PatternUsage::new(2);
        let text = render_usage(&usage.stats(), &[0, 1]);
        assert!(text.contains("no predictions"), "{text}");
    }

    #[test]
    fn mismatched_feature_length_is_ignored() {
        let usage = PatternUsage::new(3);
        usage.note(&[0.1]);
        assert_eq!(usage.observations(), 0);
    }
}
