//! Configuration for the RPM pipeline.

use rpm_cluster::BisectParams;
use rpm_ml::{CfsParams, SvmParams};
use rpm_sax::SaxConfig;

/// Which grammar-inference algorithm mines the repeated patterns
/// (§3.2.2 notes the technique "works with other (context-free) GI
/// algorithms"; both options return identical grammar semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GrammarAlgorithm {
    /// Online Sequitur (the paper's choice).
    #[default]
    Sequitur,
    /// Offline Re-Pair (Larsson & Moffat): globally most-frequent digram
    /// first; often slightly better compression, hence higher-frequency
    /// rules.
    RePair,
}

/// How the SAX granularity parameters are chosen (§4).
#[derive(Clone, Debug)]
pub enum ParamSearch {
    /// Use one fixed configuration for every class (no search).
    Fixed(SaxConfig),
    /// One fixed configuration per class, ordered by ascending label.
    PerClassFixed(Vec<SaxConfig>),
    /// DIRECT over (window, paa, alphabet) as §4.2. `per_class` selects
    /// the paper's per-class optimization; otherwise one shared
    /// configuration is optimized against the macro F-measure.
    Direct {
        /// Budget of *distinct* parameter combinations evaluated (the
        /// paper's `R`; its observed average is < 200).
        max_evals: usize,
        /// Optimize per class (paper) or once for all classes (cheaper).
        per_class: bool,
    },
    /// Exhaustive grid (Algorithm 3's brute-force variant).
    Grid {
        /// Window sizes to try.
        windows: Vec<usize>,
        /// PAA sizes to try.
        paas: Vec<usize>,
        /// Alphabet sizes to try.
        alphas: Vec<usize>,
        /// Optimize per class (paper) or shared.
        per_class: bool,
    },
}

/// All knobs of the RPM classifier. `Default` reproduces the paper's
/// choices where stated (γ = 20% of the class size, τ at the 30th
/// percentile, numerosity reduction on, centroids, complete linkage) and
/// uses a modest DIRECT budget for parameter selection.
#[derive(Clone, Debug)]
pub struct RpmConfig {
    /// Minimum fraction of a class's training instances a motif must
    /// appear in (§3.2's γ; the experiments use 0.2).
    pub gamma: f64,
    /// Percentile of intra-cluster pairwise distances used as the
    /// similarity threshold τ (§3.2.3; the experiments use 30).
    pub tau_percentile: f64,
    /// Apply numerosity reduction during discretization (§3.2.1). Off only
    /// for the ablation study.
    pub numerosity_reduction: bool,
    /// Use the cluster medoid instead of the centroid as the pattern
    /// representative (§3.2.2 notes both options).
    pub use_medoid: bool,
    /// Enable the rotation-invariant test transform of §6.1.
    pub rotation_invariant: bool,
    /// Early-abandon the closest-match search (§5.3). Off only for the
    /// ablation benchmark; results are identical either way.
    pub early_abandon: bool,
    /// Cap on occurrences per grammar rule fed to the O(u³) clustering;
    /// larger rules are uniformly subsampled (engineering guard, see
    /// DESIGN.md).
    pub max_occurrences_per_rule: usize,
    /// Cap on the deduplicated candidate pool entering the CFS transform,
    /// keeping the best-covered candidates. The transform is
    /// O(candidates · series · length²), so an unbounded pool lets one
    /// over-fragmented class dominate training time; the paper observes
    /// the pool is naturally small (§1: O(K) motifs).
    pub max_candidates: usize,
    /// Bisection-refinement knobs (Algorithm 1 lines 10-12).
    pub bisect: BisectParams,
    /// SVM hyper-parameters (§3.1).
    pub svm: SvmParams,
    /// CFS feature-selection knobs (§3.2.3).
    pub cfs: CfsParams,
    /// Grammar-inference algorithm for candidate generation (§3.2.2).
    pub grammar: GrammarAlgorithm,
    /// SAX parameter selection strategy (§4).
    pub param_search: ParamSearch,
    /// Random train/validate splits per parameter evaluation
    /// (Algorithm 3 uses 5; smaller is cheaper).
    pub n_validation_splits: usize,
    /// Fraction of the training data kept for candidate mining in each
    /// validation split.
    pub validation_train_fraction: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for RpmConfig {
    fn default() -> Self {
        Self {
            gamma: 0.2,
            tau_percentile: 30.0,
            numerosity_reduction: true,
            use_medoid: false,
            rotation_invariant: false,
            early_abandon: true,
            max_occurrences_per_rule: 64,
            max_candidates: 48,
            bisect: BisectParams::default(),
            svm: SvmParams::default(),
            cfs: CfsParams::default(),
            grammar: GrammarAlgorithm::Sequitur,
            param_search: ParamSearch::Direct { max_evals: 24, per_class: false },
            n_validation_splits: 3,
            validation_train_fraction: 0.7,
            seed: 0xC0FFEE,
        }
    }
}

impl RpmConfig {
    /// Convenience: a configuration with fixed SAX parameters (no search).
    pub fn fixed(sax: SaxConfig) -> Self {
        Self { param_search: ParamSearch::Fixed(sax), ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = RpmConfig::default();
        assert_eq!(c.gamma, 0.2);
        assert_eq!(c.tau_percentile, 30.0);
        assert!(c.numerosity_reduction);
        assert!(!c.use_medoid);
        assert!(c.early_abandon);
    }

    #[test]
    fn fixed_constructor_sets_search() {
        let c = RpmConfig::fixed(SaxConfig::new(32, 4, 4));
        match c.param_search {
            ParamSearch::Fixed(s) => {
                assert_eq!(s.window, 32);
                assert_eq!(s.paa_size, 4);
                assert_eq!(s.alphabet, 4);
            }
            _ => panic!("expected Fixed"),
        }
    }
}
