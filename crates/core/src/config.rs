//! Configuration for the RPM pipeline: the [`RpmConfig`] knobs, the
//! validated [`RpmConfig::builder`], and the training-engine settings
//! (`n_threads`, `cache`).

use rpm_cluster::BisectParams;
use rpm_ml::{CfsParams, SvmParams};
use rpm_obs::ObsConfig;
use rpm_sax::{SaxConfig, MAX_ALPHABET, MIN_ALPHABET};
use rpm_ts::MatchKernel;
use std::fmt;
use std::time::Duration;

/// Resource budget for the parameter search (§4.5 is the expensive
/// phase). When either bound trips, the search stops at a safe boundary
/// — whole combinations, never a torn evaluation — and training
/// continues with the best parameters scored so far, flagging the model
/// (and the run report, via the `train.degraded` counter) as degraded
/// instead of erroring. The default is unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrainBudget {
    /// Wall-clock limit for the whole parameter search. Checked between
    /// evaluations, so a slow evaluation can overshoot by its own
    /// duration but nothing is ever half-applied.
    pub wall_clock: Option<Duration>,
    /// Cap on *fresh* combination evaluations (cache hits and
    /// checkpoint-restored scores are free — resuming under the same
    /// budget makes progress instead of re-spending it).
    pub max_evals: Option<usize>,
}

impl TrainBudget {
    /// No limits (the default).
    pub const fn unlimited() -> Self {
        Self {
            wall_clock: None,
            max_evals: None,
        }
    }

    /// Whether both bounds are absent.
    pub fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none() && self.max_evals.is_none()
    }
}

/// Which grammar-inference algorithm mines the repeated patterns
/// (§3.2.2 notes the technique "works with other (context-free) GI
/// algorithms"; both options return identical grammar semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GrammarAlgorithm {
    /// Online Sequitur (the paper's choice).
    #[default]
    Sequitur,
    /// Offline Re-Pair (Larsson & Moffat): globally most-frequent digram
    /// first; often slightly better compression, hence higher-frequency
    /// rules.
    RePair,
}

/// How the SAX granularity parameters are chosen (§4).
#[derive(Clone, Debug)]
pub enum ParamSearch {
    /// Use one fixed configuration for every class (no search).
    Fixed(SaxConfig),
    /// One fixed configuration per class, ordered by ascending label.
    PerClassFixed(Vec<SaxConfig>),
    /// DIRECT over (window, paa, alphabet) as §4.2. `per_class` selects
    /// the paper's per-class optimization; otherwise one shared
    /// configuration is optimized against the macro F-measure.
    Direct {
        /// Budget of *distinct* parameter combinations evaluated (the
        /// paper's `R`; its observed average is < 200).
        max_evals: usize,
        /// Optimize per class (paper) or once for all classes (cheaper).
        per_class: bool,
    },
    /// Exhaustive grid (Algorithm 3's brute-force variant).
    Grid {
        /// Window sizes to try.
        windows: Vec<usize>,
        /// PAA sizes to try.
        paas: Vec<usize>,
        /// Alphabet sizes to try.
        alphas: Vec<usize>,
        /// Optimize per class (paper) or shared.
        per_class: bool,
    },
}

/// A rejected [`RpmConfigBuilder`] value, naming the offending knob and
/// its documented range.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// γ must lie in `(0, 1]` — it is a fraction of the class size.
    GammaOutOfRange(f64),
    /// The τ percentile must lie in `[0, 100]`.
    TauPercentileOutOfRange(f64),
    /// An alphabet size outside the supported
    /// [`MIN_ALPHABET`]`..=`[`MAX_ALPHABET`] range.
    AlphabetOutOfRange(usize),
    /// A SAX window of zero length.
    ZeroWindow,
    /// A PAA size of zero.
    ZeroPaa,
    /// The validation train fraction must lie strictly in `(0, 1)`.
    ValidationFractionOutOfRange(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GammaOutOfRange(g) => {
                write!(f, "gamma {g} outside (0, 1]")
            }
            Self::TauPercentileOutOfRange(t) => {
                write!(f, "tau percentile {t} outside [0, 100]")
            }
            Self::AlphabetOutOfRange(a) => write!(
                f,
                "alphabet size {a} outside {MIN_ALPHABET}..={MAX_ALPHABET}"
            ),
            Self::ZeroWindow => write!(f, "SAX window must be positive"),
            Self::ZeroPaa => write!(f, "PAA size must be positive"),
            Self::ValidationFractionOutOfRange(v) => {
                write!(f, "validation train fraction {v} outside (0, 1)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// All knobs of the RPM classifier. `Default` reproduces the paper's
/// choices where stated (γ = 20% of the class size, τ at the 30th
/// percentile, numerosity reduction on, centroids, complete linkage) and
/// uses a modest DIRECT budget for parameter selection.
#[derive(Clone, Debug)]
pub struct RpmConfig {
    /// Minimum fraction of a class's training instances a motif must
    /// appear in (§3.2's γ; the experiments use 0.2).
    pub gamma: f64,
    /// Percentile of intra-cluster pairwise distances used as the
    /// similarity threshold τ (§3.2.3; the experiments use 30).
    pub tau_percentile: f64,
    /// Apply numerosity reduction during discretization (§3.2.1). Off only
    /// for the ablation study.
    pub numerosity_reduction: bool,
    /// Use the cluster medoid instead of the centroid as the pattern
    /// representative (§3.2.2 notes both options).
    pub use_medoid: bool,
    /// Enable the rotation-invariant test transform of §6.1.
    pub rotation_invariant: bool,
    /// Early-abandon the closest-match search (§5.3). Off only for the
    /// ablation benchmark; results are identical either way.
    pub early_abandon: bool,
    /// Closest-match kernel implementation: the batched pattern-set ×
    /// series cascade (default; bit-identical to `Rolling`, with shared
    /// per-series statistics and admissible lower-bound pruning), the
    /// fused rolling-statistics kernel, or the pre-optimization
    /// per-window re-normalizing scan. `Rolling` and `Naive` are
    /// tolerance-equal (≤1e-9 relative distance, exact match positions
    /// — see `tests/kernel_diff.rs`); `Batched` and `Rolling` are
    /// bit-identical; `Naive` exists for the differential regression
    /// tests and the ablation benchmark.
    /// Not persisted: loaded models always serve with the default kernel.
    pub kernel: MatchKernel,
    /// Cap on occurrences per grammar rule fed to the O(u³) clustering;
    /// larger rules are uniformly subsampled (engineering guard, see
    /// DESIGN.md).
    pub max_occurrences_per_rule: usize,
    /// Cap on the deduplicated candidate pool entering the CFS transform,
    /// keeping the best-covered candidates. The transform is
    /// O(candidates · series · length²), so an unbounded pool lets one
    /// over-fragmented class dominate training time; the paper observes
    /// the pool is naturally small (§1: O(K) motifs).
    pub max_candidates: usize,
    /// Bisection-refinement knobs (Algorithm 1 lines 10-12).
    pub bisect: BisectParams,
    /// SVM hyper-parameters (§3.1).
    pub svm: SvmParams,
    /// CFS feature-selection knobs (§3.2.3).
    pub cfs: CfsParams,
    /// Grammar-inference algorithm for candidate generation (§3.2.2).
    pub grammar: GrammarAlgorithm,
    /// SAX parameter selection strategy (§4).
    pub param_search: ParamSearch,
    /// Random train/validate splits per parameter evaluation
    /// (Algorithm 3 uses 5; smaller is cheaper).
    pub n_validation_splits: usize,
    /// Fraction of the training data kept for candidate mining in each
    /// validation split.
    pub validation_train_fraction: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Worker threads for the training engine: `1` runs everything
    /// inline (the reference serial path), `0` uses one worker per
    /// available CPU, any other value spawns exactly that many workers.
    /// Results are bit-identical across all settings (DESIGN.md §5).
    pub n_threads: usize,
    /// Memoize discretizations, combination scores, and transform columns
    /// during training. Identical results either way; off only for the
    /// cache ablation.
    pub cache: bool,
    /// Observability settings (recording level + JSONL report path),
    /// installed globally when training starts. Recording never changes
    /// results — only what is measured. Binaries usually leave this at
    /// the default and rely on `RPM_LOG` instead (`rpm_obs::init_env`).
    pub obs: ObsConfig,
    /// Resource budget for the parameter search; exhausting it degrades
    /// (best-so-far parameters) instead of erroring.
    pub budget: TrainBudget,
    /// Checkpoint file for the parameter search: completed combination
    /// scores are appended as they finish, and a later run pointed at
    /// the same file re-runs only the missing combinations
    /// (`rpm-cli train --checkpoint PATH`). `None` disables
    /// checkpointing.
    pub checkpoint: Option<std::path::PathBuf>,
}

impl Default for RpmConfig {
    fn default() -> Self {
        Self {
            gamma: 0.2,
            tau_percentile: 30.0,
            numerosity_reduction: true,
            use_medoid: false,
            rotation_invariant: false,
            early_abandon: true,
            kernel: MatchKernel::Batched,
            max_occurrences_per_rule: 64,
            max_candidates: 48,
            bisect: BisectParams::default(),
            svm: SvmParams::default(),
            cfs: CfsParams::default(),
            grammar: GrammarAlgorithm::Sequitur,
            param_search: ParamSearch::Direct {
                max_evals: 24,
                per_class: false,
            },
            n_validation_splits: 3,
            validation_train_fraction: 0.7,
            seed: 0xC0FFEE,
            n_threads: 1,
            cache: true,
            obs: ObsConfig::default(),
            budget: TrainBudget::unlimited(),
            checkpoint: None,
        }
    }
}

impl RpmConfig {
    /// Convenience: a configuration with fixed SAX parameters (no search).
    pub fn fixed(sax: SaxConfig) -> Self {
        Self {
            param_search: ParamSearch::Fixed(sax),
            ..Self::default()
        }
    }

    /// A validated builder starting from [`RpmConfig::default`]:
    ///
    /// ```
    /// use rpm_core::RpmConfig;
    ///
    /// let config = RpmConfig::builder().gamma(0.2).threads(8).build().unwrap();
    /// assert_eq!(config.n_threads, 8);
    ///
    /// let err = RpmConfig::builder().gamma(1.5).build().unwrap_err();
    /// assert!(err.to_string().contains("gamma"));
    /// ```
    pub fn builder() -> RpmConfigBuilder {
        RpmConfigBuilder::default()
    }
}

/// Builder for [`RpmConfig`] whose [`RpmConfigBuilder::build`] validates
/// every range the pipeline depends on, instead of panicking deep inside
/// training. Unset knobs keep their [`RpmConfig::default`] values.
#[derive(Clone, Debug, Default)]
pub struct RpmConfigBuilder {
    config: RpmConfig,
    /// A pending `sax(w, p, a)` request, validated (and turned into a
    /// `ParamSearch::Fixed`) at build time so invalid alphabets error
    /// instead of panicking in `SaxConfig::new`.
    fixed_sax: Option<(usize, usize, usize)>,
}

impl RpmConfigBuilder {
    /// Minimum class-coverage fraction γ; valid range `(0, 1]`.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.config.gamma = gamma;
        self
    }

    /// τ percentile of intra-cluster distances; valid range `[0, 100]`.
    pub fn tau_percentile(mut self, percentile: f64) -> Self {
        self.config.tau_percentile = percentile;
        self
    }

    /// Training-engine worker threads (`0` = one per CPU, `1` = serial).
    pub fn threads(mut self, n_threads: usize) -> Self {
        self.config.n_threads = n_threads;
        self
    }

    /// Enable or disable the training memoization cache.
    pub fn cache(mut self, enabled: bool) -> Self {
        self.config.cache = enabled;
        self
    }

    /// Observability settings (recording level + JSONL report path).
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.config.obs = obs;
        self
    }

    /// Master RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Toggle numerosity reduction (§3.2.1).
    pub fn numerosity_reduction(mut self, on: bool) -> Self {
        self.config.numerosity_reduction = on;
        self
    }

    /// Toggle the rotation-invariant test transform (§6.1).
    pub fn rotation_invariant(mut self, on: bool) -> Self {
        self.config.rotation_invariant = on;
        self
    }

    /// Toggle early abandoning in closest-match scans (§5.3).
    pub fn early_abandon(mut self, on: bool) -> Self {
        self.config.early_abandon = on;
        self
    }

    /// Closest-match kernel implementation (batched-cascade default,
    /// naive re-normalizing scan for differential tests and ablations).
    pub fn kernel(mut self, kernel: MatchKernel) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Use medoid (instead of centroid) cluster representatives.
    pub fn use_medoid(mut self, on: bool) -> Self {
        self.config.use_medoid = on;
        self
    }

    /// Grammar-inference algorithm.
    pub fn grammar(mut self, grammar: GrammarAlgorithm) -> Self {
        self.config.grammar = grammar;
        self
    }

    /// Fixed SAX parameters (no search); validated at build time.
    pub fn sax(mut self, window: usize, paa_size: usize, alphabet: usize) -> Self {
        self.fixed_sax = Some((window, paa_size, alphabet));
        self
    }

    /// An explicit parameter-search strategy.
    pub fn param_search(mut self, search: ParamSearch) -> Self {
        self.config.param_search = search;
        self.fixed_sax = None;
        self
    }

    /// Validation splits per parameter evaluation.
    pub fn validation_splits(mut self, n: usize) -> Self {
        self.config.n_validation_splits = n;
        self
    }

    /// Train fraction of each validation split; valid range `(0, 1)`.
    pub fn validation_train_fraction(mut self, fraction: f64) -> Self {
        self.config.validation_train_fraction = fraction;
        self
    }

    /// Cap on the deduplicated candidate pool.
    pub fn max_candidates(mut self, n: usize) -> Self {
        self.config.max_candidates = n;
        self
    }

    /// Resource budget for the parameter search (see [`TrainBudget`]).
    pub fn budget(mut self, budget: TrainBudget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Checkpoint file for parameter-search resume.
    pub fn checkpoint(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.config.checkpoint = Some(path.into());
        self
    }

    /// Validates every range and returns the finished configuration.
    pub fn build(self) -> Result<RpmConfig, ConfigError> {
        let Self {
            mut config,
            fixed_sax,
        } = self;
        if !(config.gamma > 0.0 && config.gamma <= 1.0) {
            return Err(ConfigError::GammaOutOfRange(config.gamma));
        }
        if !(0.0..=100.0).contains(&config.tau_percentile) || config.tau_percentile.is_nan() {
            return Err(ConfigError::TauPercentileOutOfRange(config.tau_percentile));
        }
        if !(config.validation_train_fraction > 0.0 && config.validation_train_fraction < 1.0) {
            return Err(ConfigError::ValidationFractionOutOfRange(
                config.validation_train_fraction,
            ));
        }
        if let Some((window, paa, alphabet)) = fixed_sax {
            validate_sax(window, paa, alphabet)?;
            config.param_search = ParamSearch::Fixed(SaxConfig::new(window, paa, alphabet));
        }
        match &config.param_search {
            ParamSearch::Fixed(s) => validate_sax(s.window, s.paa_size, s.alphabet)?,
            ParamSearch::PerClassFixed(saxes) => {
                for s in saxes {
                    validate_sax(s.window, s.paa_size, s.alphabet)?;
                }
            }
            ParamSearch::Grid {
                windows,
                paas,
                alphas,
                ..
            } => {
                if windows.contains(&0) {
                    return Err(ConfigError::ZeroWindow);
                }
                if paas.contains(&0) {
                    return Err(ConfigError::ZeroPaa);
                }
                if let Some(&a) = alphas
                    .iter()
                    .find(|&&a| !(MIN_ALPHABET..=MAX_ALPHABET).contains(&a))
                {
                    return Err(ConfigError::AlphabetOutOfRange(a));
                }
            }
            ParamSearch::Direct { .. } => {}
        }
        Ok(config)
    }
}

fn validate_sax(window: usize, paa_size: usize, alphabet: usize) -> Result<(), ConfigError> {
    if window == 0 {
        return Err(ConfigError::ZeroWindow);
    }
    if paa_size == 0 {
        return Err(ConfigError::ZeroPaa);
    }
    if !(MIN_ALPHABET..=MAX_ALPHABET).contains(&alphabet) {
        return Err(ConfigError::AlphabetOutOfRange(alphabet));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = RpmConfig::default();
        assert_eq!(c.gamma, 0.2);
        assert_eq!(c.tau_percentile, 30.0);
        assert!(c.numerosity_reduction);
        assert!(!c.use_medoid);
        assert!(c.early_abandon);
        assert_eq!(c.kernel, MatchKernel::Batched, "batched kernel by default");
        assert_eq!(c.n_threads, 1, "serial by default");
        assert!(c.cache);
    }

    #[test]
    fn fixed_constructor_sets_search() {
        let c = RpmConfig::fixed(SaxConfig::new(32, 4, 4));
        match c.param_search {
            ParamSearch::Fixed(s) => {
                assert_eq!(s.window, 32);
                assert_eq!(s.paa_size, 4);
                assert_eq!(s.alphabet, 4);
            }
            _ => panic!("expected Fixed"),
        }
    }

    #[test]
    fn builder_round_trips_the_issue_example() {
        let c = RpmConfig::builder().gamma(0.2).threads(8).build().unwrap();
        assert_eq!(c.gamma, 0.2);
        assert_eq!(c.n_threads, 8);
        assert!(c.cache);
    }

    #[test]
    fn builder_rejects_bad_gamma() {
        for g in [0.0, -0.1, 1.01, f64::NAN] {
            let err = RpmConfig::builder().gamma(g).build().unwrap_err();
            assert!(matches!(err, ConfigError::GammaOutOfRange(_)), "{g}: {err}");
        }
        assert!(RpmConfig::builder().gamma(1.0).build().is_ok());
    }

    #[test]
    fn builder_rejects_bad_tau() {
        for t in [-0.001, 100.001, f64::NAN] {
            let err = RpmConfig::builder().tau_percentile(t).build().unwrap_err();
            assert!(
                matches!(err, ConfigError::TauPercentileOutOfRange(_)),
                "{t}: {err}"
            );
        }
        assert!(RpmConfig::builder().tau_percentile(0.0).build().is_ok());
        assert!(RpmConfig::builder().tau_percentile(100.0).build().is_ok());
    }

    #[test]
    fn builder_rejects_bad_alphabet_without_panicking() {
        for a in [0usize, 1, MAX_ALPHABET + 1, 1000] {
            let err = RpmConfig::builder().sax(32, 4, a).build().unwrap_err();
            assert_eq!(err, ConfigError::AlphabetOutOfRange(a));
        }
        let ok = RpmConfig::builder()
            .sax(32, 4, MAX_ALPHABET)
            .build()
            .unwrap();
        assert!(matches!(ok.param_search, ParamSearch::Fixed(_)));
    }

    #[test]
    fn builder_rejects_zero_geometry() {
        assert_eq!(
            RpmConfig::builder().sax(0, 4, 4).build().unwrap_err(),
            ConfigError::ZeroWindow
        );
        assert_eq!(
            RpmConfig::builder().sax(8, 0, 4).build().unwrap_err(),
            ConfigError::ZeroPaa
        );
    }

    #[test]
    fn builder_validates_grid_alphas() {
        let err = RpmConfig::builder()
            .param_search(ParamSearch::Grid {
                windows: vec![16],
                paas: vec![4],
                alphas: vec![4, 99],
                per_class: false,
            })
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::AlphabetOutOfRange(99));
    }

    #[test]
    fn builder_rejects_bad_validation_fraction() {
        for v in [0.0, 1.0, -0.5, 2.0] {
            let err = RpmConfig::builder()
                .validation_train_fraction(v)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::ValidationFractionOutOfRange(_)),
                "{v}"
            );
        }
    }

    #[test]
    fn config_errors_display_the_offending_value() {
        assert!(ConfigError::GammaOutOfRange(2.0).to_string().contains("2"));
        assert!(ConfigError::AlphabetOutOfRange(99)
            .to_string()
            .contains("99"));
    }
}
