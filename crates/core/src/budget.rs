//! Runtime tracking for [`TrainBudget`](crate::config::TrainBudget).
//!
//! One [`BudgetState`] lives for the duration of a parameter search and
//! is consulted before every *fresh* combination evaluation (cache hits
//! and checkpoint-restored scores never spend budget). Exhaustion is
//! sticky: once either bound trips, every later claim is refused, the
//! search finishes with whatever scores it has, and the outcome is
//! flagged degraded instead of erroring.

use crate::config::TrainBudget;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

#[derive(Debug)]
pub(crate) struct BudgetState {
    deadline: Option<Instant>,
    max_evals: Option<usize>,
    claimed: AtomicUsize,
    exhausted: AtomicBool,
}

impl BudgetState {
    pub fn new(budget: &TrainBudget) -> Self {
        Self {
            // A wall-clock bound too large for the monotonic clock is no
            // bound at all.
            deadline: budget
                .wall_clock
                .and_then(|d| Instant::now().checked_add(d)),
            max_evals: budget.max_evals,
            claimed: AtomicUsize::new(0),
            exhausted: AtomicBool::new(false),
        }
    }

    /// Claims one fresh evaluation. Returns `false` — and latches the
    /// exhausted flag — once the deadline has passed or the evaluation
    /// cap is spent. Safe to call from engine workers.
    pub fn try_claim(&self) -> bool {
        if self.exhausted.load(Ordering::Relaxed) {
            return false;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.exhausted.store(true, Ordering::Relaxed);
                return false;
            }
        }
        if let Some(max) = self.max_evals {
            // fetch_add claims a slot atomically; over-claims past the
            // cap only latch the flag, they never run.
            if self.claimed.fetch_add(1, Ordering::Relaxed) >= max {
                self.exhausted.store(true, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    /// Whether a claim was ever refused.
    pub fn exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Time left until the deadline (`None` = unbounded). Zero once the
    /// deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = BudgetState::new(&TrainBudget::unlimited());
        for _ in 0..10_000 {
            assert!(b.try_claim());
        }
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn eval_cap_latches_after_max_claims() {
        let b = BudgetState::new(&TrainBudget {
            max_evals: Some(3),
            wall_clock: None,
        });
        assert_eq!((0..8).filter(|_| b.try_claim()).count(), 3);
        assert!(b.exhausted());
        assert!(!b.try_claim(), "exhaustion is sticky");
    }

    #[test]
    fn zero_eval_cap_refuses_immediately() {
        let b = BudgetState::new(&TrainBudget {
            max_evals: Some(0),
            wall_clock: None,
        });
        assert!(!b.try_claim());
        assert!(b.exhausted());
    }

    #[test]
    fn expired_deadline_refuses_claims() {
        let b = BudgetState::new(&TrainBudget {
            wall_clock: Some(Duration::ZERO),
            max_evals: None,
        });
        assert!(!b.try_claim());
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_allows_claims() {
        let b = BudgetState::new(&TrainBudget {
            wall_clock: Some(Duration::from_secs(3600)),
            max_evals: None,
        });
        assert!(b.try_claim());
        assert!(!b.exhausted());
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }
}
