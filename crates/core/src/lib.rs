//! # rpm-core — Representative Pattern Mining
//!
//! The primary contribution of *RPM: Representative Pattern Mining for
//! Efficient Time Series Classification* (EDBT 2016), assembled from the
//! substrate crates:
//!
//! 1. **Candidate generation** ([`candidates`], Algorithm 1) — per class:
//!    discretize with SAX + numerosity reduction, infer a Sequitur grammar
//!    over the word stream (junction-safe), map every rule occurrence back
//!    to a raw subsequence, refine each rule's occurrence set by iterative
//!    bisection clustering, and keep cluster representatives shared by at
//!    least `γ` of the class's training instances.
//! 2. **Distinct-pattern selection** ([`distinct`], Algorithm 2) — drop
//!    near-duplicate candidates below the τ similarity threshold (30th
//!    percentile of intra-cluster distances), transform the training set
//!    into the candidate-distance feature space, and run CFS; the selected
//!    features *are* the representative patterns.
//! 3. **Classification** ([`model`], §3.1) — a linear SVM over the
//!    transformed feature vectors, with the optional rotation-invariant
//!    transform of §6.1.
//! 4. **Parameter selection** ([`params`], Algorithm 3 / §4.2) — per-class
//!    or shared SAX parameters via exhaustive grid search or DIRECT.
//!
//! ```no_run
//! use rpm_core::{RpmClassifier, RpmConfig};
//! use rpm_ts::Dataset;
//!
//! let train: Dataset = unimplemented!("load or generate a dataset");
//! let test: Dataset = unimplemented!();
//! let model = RpmClassifier::train(&train, &RpmConfig::default()).unwrap();
//! let predictions: Vec<usize> = test.series.iter().map(|s| model.predict(s)).collect();
//! ```

pub(crate) mod budget;
pub mod cache;
pub mod candidates;
pub mod checkpoint;
pub mod config;
pub mod distinct;
pub mod engine;
pub mod explore;
pub mod model;
pub mod params;
pub mod persist;
pub mod transform;
pub mod usage;

pub use cache::{CacheStats, SaxCache, SetId};
pub use candidates::{find_candidates_for_class, Candidate, CandidateSet};
pub use checkpoint::CheckpointError;
pub use config::{
    ConfigError, GrammarAlgorithm, ParamSearch, RpmConfig, RpmConfigBuilder, TrainBudget,
};
pub use distinct::{compute_tau, remove_similar, remove_similar_kernel, select_representative};
pub use engine::{Engine, EngineError};
pub use explore::{
    discover_motifs, discover_motifs_batch, find_discords, find_discords_batch, rule_coverage,
    Discord, Motif,
};
pub use model::{ModelSchema, Pattern, RpmClassifier, SchemaMismatch, TrainError};
pub use params::{default_bounds, search_parameters, SearchOutcome};
pub use persist::{model_fingerprint, PersistError, VerifyReport};
pub use rpm_obs::{ObsConfig, ObsLevel};
pub use rpm_ts::{MatchKernel, MatchPlan, Parallelism};
pub use transform::{
    batched_match, pattern_distance, pattern_distance_plans, prepare_patterns, transform_series,
    transform_series_batched_counted, transform_series_plans, transform_series_plans_counted,
    transform_set, transform_set_engine, transform_set_parallel, transform_set_plans_engine,
    transform_set_plans_engine_counted,
};
