//! Training-time memoization (the second half of the shared engine).
//!
//! One [`SaxCache`] lives for the duration of a single
//! `RpmClassifier::train` call and is shared by every stage that call
//! fans out — the parameter search, its validation splits, candidate
//! mining, and the feature transforms. It memoizes the four artifacts the
//! serial pipeline recomputes most:
//!
//! * **PAA frames** — the alphabet-independent half of discretization,
//!   keyed by `(set, class, window, paa)`. Grid/DIRECT neighbours that
//!   differ only in alphabet size re-derive their words from the same
//!   frames instead of re-running z-normalize + PAA over every window.
//! * **Word sequences** — full discretizations, keyed by
//!   `(set, class, SaxConfig, numerosity reduction)`.
//! * **Combination scores** — the cross-validated objective of one
//!   [`SaxConfig`] (Algorithm 3's inner loop). Per-class DIRECT runs
//!   probe heavily overlapping point sets; each distinct combination is
//!   scored once per `train` call.
//! * **Transform columns** — the distance of every series in a set to one
//!   pattern, keyed by `(set, pattern fingerprint, rotation, abandoning,
//!   kernel)`. The CFS selection transform and the final SVM transform
//!   share their columns for every pattern that survives selection.
//!
//! All maps sit behind `std::sync::Mutex` (guarded locks; values are
//! `Arc`-shared) so engine workers can hit the cache concurrently.
//! Cached values are pure functions of their keys, so a racy double
//! compute inserts the same value twice — correctness never depends on
//! scheduling, which is what keeps parallel training bit-identical to
//! serial (see DESIGN.md §5).

use crate::engine::Engine;
use rpm_sax::{paa_frames, words_from_frames, PaaFrame, SaxConfig, SaxWordAt};
use rpm_ts::{Label, MatchKernel};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Identifies which series collection a cached artifact was computed
/// from. Validation subsets are fully determined by the split seed (the
/// stratified shuffle is deterministic), so the seed *is* the identity —
/// every parameter combination probing the same split shares entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SetId {
    /// The full training set of the current `train` call.
    FullTrain,
    /// The training half of the validation split drawn with this seed.
    Split(u64),
}

/// Hit/miss counters of one [`SaxCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: usize,
    /// Lookups that had to compute.
    pub misses: usize,
}

impl CacheStats {
    /// Total lookups (`hits + misses`).
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from memory (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} lookups ({:.1}% hit rate)",
            self.hits,
            self.lookups(),
            100.0 * self.hit_rate()
        )
    }
}

/// Which memoization map a lookup went to; routes the lookup to the
/// matching per-family counters in the global metrics registry.
#[derive(Clone, Copy, Debug)]
enum Family {
    Frames,
    Words,
    Evals,
    Columns,
}

type FramesKey = (SetId, Label, usize, usize);
type WordsKey = (SetId, Label, SaxConfig, bool);
pub(crate) type EvalValue = Option<(BTreeMap<Label, f64>, f64)>;
type ColumnKey = (SetId, u64, bool, bool, MatchKernel);

/// The per-training-run memoization cache. Construct one per
/// `RpmClassifier::train` call (`RpmConfig::cache` gates it); a disabled
/// cache computes everything on demand and stores nothing.
#[derive(Debug, Default)]
pub struct SaxCache {
    enabled: bool,
    frames: Mutex<HashMap<FramesKey, Arc<Vec<Vec<PaaFrame>>>>>,
    words: Mutex<HashMap<WordsKey, Arc<Vec<Vec<SaxWordAt>>>>>,
    evals: Mutex<HashMap<SaxConfig, EvalValue>>,
    columns: Mutex<HashMap<ColumnKey, Arc<Vec<f64>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SaxCache {
    /// A cache that memoizes iff `enabled`.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            ..Self::default()
        }
    }

    /// A pass-through cache: every lookup computes, nothing is stored.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether lookups are memoized.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn record(&self, family: Family, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        if rpm_obs::enabled() {
            let m = rpm_obs::metrics();
            let fam = match family {
                Family::Frames => &m.cache_frames,
                Family::Words => &m.cache_words,
                Family::Evals => &m.cache_evals,
                Family::Columns => &m.cache_columns,
            };
            if hit {
                fam.hits.inc();
            } else {
                fam.misses.inc();
            }
        }
    }

    /// PAA frames of every member of `(set, class)` under
    /// `(window, paa)` — the alphabet-independent discretization stage.
    pub fn frames(
        &self,
        set: SetId,
        class: Label,
        window: usize,
        paa_size: usize,
        members: &[&[f64]],
    ) -> Arc<Vec<Vec<PaaFrame>>> {
        let compute = || {
            Arc::new(
                members
                    .iter()
                    .map(|s| paa_frames(s, window, paa_size))
                    .collect::<Vec<_>>(),
            )
        };
        if !self.enabled {
            return compute();
        }
        let key = (set, class, window, paa_size);
        if let Some(v) = self.frames.lock().ok().and_then(|m| m.get(&key).cloned()) {
            self.record(Family::Frames, true);
            return v;
        }
        self.record(Family::Frames, false);
        let v = compute();
        if let Ok(mut m) = self.frames.lock() {
            return m.entry(key).or_insert(v).clone();
        }
        v
    }

    /// Discretized word sequences of every member of `(set, class)` under
    /// `sax`, derived from the cached frames. Identical to calling
    /// `rpm_sax::discretize` per member.
    pub fn words(
        &self,
        set: SetId,
        class: Label,
        sax: &SaxConfig,
        numerosity_reduction: bool,
        members: &[&[f64]],
    ) -> Arc<Vec<Vec<SaxWordAt>>> {
        let key = (set, class, *sax, numerosity_reduction);
        if self.enabled {
            if let Some(v) = self.words.lock().ok().and_then(|m| m.get(&key).cloned()) {
                self.record(Family::Words, true);
                return v;
            }
            self.record(Family::Words, false);
        }
        let frames = self.frames(set, class, sax.window, sax.paa_size, members);
        let v = Arc::new(
            frames
                .iter()
                .map(|f| words_from_frames(f, sax.alphabet, numerosity_reduction))
                .collect::<Vec<_>>(),
        );
        if !self.enabled {
            return v;
        }
        if let Ok(mut m) = self.words.lock() {
            return m.entry(key).or_insert(v).clone();
        }
        v
    }

    /// Seeds the evaluation map with an already-known combination score
    /// (checkpoint resume). Counts as neither hit nor miss; a no-op on
    /// a disabled cache.
    pub(crate) fn preload_eval(&self, sax: SaxConfig, value: EvalValue) {
        if !self.enabled {
            return;
        }
        if let Ok(mut m) = self.evals.lock() {
            m.insert(sax, value);
        }
    }

    /// Memoized cross-validation score of one parameter combination
    /// (Algorithm 3's objective). The combination is always scored
    /// against the full training set with splits derived from the config
    /// seed, so the [`SaxConfig`] alone identifies the result.
    pub fn eval(&self, sax: &SaxConfig, compute: impl FnOnce() -> EvalValue) -> EvalValue {
        if !self.enabled {
            return compute();
        }
        if let Some(v) = self.evals.lock().ok().and_then(|m| m.get(sax).cloned()) {
            self.record(Family::Evals, true);
            return v;
        }
        self.record(Family::Evals, false);
        let v = compute();
        if let Ok(mut m) = self.evals.lock() {
            return m.entry(*sax).or_insert(v).clone();
        }
        v
    }

    /// Memoized transform column: the distance of every series in `set`
    /// to `pattern`. Keyed by a fingerprint of the pattern's exact bits,
    /// so any pattern reappearing between the CFS transform and the final
    /// SVM transform reuses its column.
    pub fn column(
        &self,
        set: SetId,
        pattern: &[f64],
        rotation_invariant: bool,
        early_abandon: bool,
        kernel: MatchKernel,
        compute: impl FnOnce() -> Vec<f64>,
    ) -> Arc<Vec<f64>> {
        if !self.enabled {
            return Arc::new(compute());
        }
        let key = (
            set,
            fingerprint(pattern),
            rotation_invariant,
            early_abandon,
            kernel,
        );
        if let Some(v) = self.columns.lock().ok().and_then(|m| m.get(&key).cloned()) {
            self.record(Family::Columns, true);
            return v;
        }
        self.record(Family::Columns, false);
        let v = Arc::new(compute());
        if let Ok(mut m) = self.columns.lock() {
            return m.entry(key).or_insert(v).clone();
        }
        v
    }

    /// Split-phase [`column`](Self::column) lookup for the batched
    /// transform, which computes all missing columns in one pattern-set
    /// scan instead of one closure per column. Records a hit/miss per
    /// call, exactly like `column`; always a recorded miss on a
    /// disabled cache.
    pub(crate) fn try_column(
        &self,
        set: SetId,
        pattern: &[f64],
        rotation_invariant: bool,
        early_abandon: bool,
        kernel: MatchKernel,
    ) -> Option<Arc<Vec<f64>>> {
        if !self.enabled {
            self.record(Family::Columns, false);
            return None;
        }
        let key = (
            set,
            fingerprint(pattern),
            rotation_invariant,
            early_abandon,
            kernel,
        );
        let found = self.columns.lock().ok().and_then(|m| m.get(&key).cloned());
        self.record(Family::Columns, found.is_some());
        found
    }

    /// Stores a column computed after a [`try_column`](Self::try_column)
    /// miss (no hit/miss accounting — the miss was already recorded).
    /// First write wins, mirroring `column`'s `or_insert`.
    pub(crate) fn store_column(
        &self,
        set: SetId,
        pattern: &[f64],
        rotation_invariant: bool,
        early_abandon: bool,
        kernel: MatchKernel,
        value: Arc<Vec<f64>>,
    ) -> Arc<Vec<f64>> {
        if !self.enabled {
            return value;
        }
        let key = (
            set,
            fingerprint(pattern),
            rotation_invariant,
            early_abandon,
            kernel,
        );
        if let Ok(mut m) = self.columns.lock() {
            return m.entry(key).or_insert(value).clone();
        }
        value
    }
}

/// FNV-1a over the pattern's length and exact f64 bit patterns. Patterns
/// are identical-by-construction when reused (clones of the same
/// candidate values), so bit equality is the right notion.
fn fingerprint(pattern: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    mix(pattern.len() as u64);
    for &v in pattern {
        mix(v.to_bits());
    }
    h
}

/// Everything a training stage needs: its parallelism budget, the shared
/// cache, and the identity of the series collection it operates on.
/// Fan-out stages hand nested stages a [`Ctx::serial`] child so
/// parallelism is spent exactly once, at the outermost stage.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Ctx<'a> {
    pub engine: Engine,
    pub cache: &'a SaxCache,
    pub set: SetId,
    /// Parameter-search budget; `None` = unlimited (the default).
    pub budget: Option<&'a crate::budget::BudgetState>,
    /// Open checkpoint receiving completed combination scores.
    pub checkpoint: Option<&'a crate::checkpoint::Checkpoint>,
}

impl<'a> Ctx<'a> {
    /// Root context over the full training set.
    pub fn new(engine: Engine, cache: &'a SaxCache) -> Self {
        Self {
            engine,
            cache,
            set: SetId::FullTrain,
            budget: None,
            checkpoint: None,
        }
    }

    /// This context with a search budget attached.
    pub fn with_budget(&self, budget: &'a crate::budget::BudgetState) -> Self {
        Self {
            budget: Some(budget),
            ..*self
        }
    }

    /// This context with an open checkpoint attached.
    pub fn with_checkpoint(&self, checkpoint: Option<&'a crate::checkpoint::Checkpoint>) -> Self {
        Self {
            checkpoint,
            ..*self
        }
    }

    /// This context with the parallelism budget already spent.
    pub fn serial(&self) -> Self {
        Self {
            engine: Engine::serial(),
            ..*self
        }
    }

    /// This context, rebound to another series collection.
    pub fn with_set(&self, set: SetId) -> Self {
        Self { set, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpm_sax::discretize;

    fn series(n: usize, len: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|k| {
                (0..len)
                    .map(|i| ((i + 7 * k) as f64 * 0.31).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn words_match_direct_discretization() {
        let data = series(3, 80);
        let members: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let cache = SaxCache::new(true);
        for alphabet in [3usize, 5, 8] {
            let sax = SaxConfig::new(16, 4, alphabet);
            let words = cache.words(SetId::FullTrain, 0, &sax, true, &members);
            for (w, s) in words.iter().zip(&members) {
                assert_eq!(*w, discretize(s, &sax, true));
            }
        }
    }

    #[test]
    fn alphabet_neighbours_share_frames() {
        let data = series(4, 60);
        let members: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let cache = SaxCache::new(true);
        // First alphabet: words miss, frames miss.
        cache.words(
            SetId::FullTrain,
            1,
            &SaxConfig::new(16, 4, 3),
            true,
            &members,
        );
        let after_first = cache.stats();
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.misses, 2, "words + frames miss");
        // Second alphabet, same (window, paa): words miss, frames HIT.
        cache.words(
            SetId::FullTrain,
            1,
            &SaxConfig::new(16, 4, 6),
            true,
            &members,
        );
        let after_second = cache.stats();
        assert_eq!(after_second.hits, 1, "frames reused across alphabets");
        assert_eq!(after_second.misses, 3);
        // Exact repeat: words HIT, frames untouched.
        cache.words(
            SetId::FullTrain,
            1,
            &SaxConfig::new(16, 4, 6),
            true,
            &members,
        );
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn interleaved_configs_and_sets_do_not_collide() {
        let a = series(3, 64);
        let b = series(5, 64);
        let ma: Vec<&[f64]> = a.iter().map(Vec::as_slice).collect();
        let mb: Vec<&[f64]> = b.iter().map(Vec::as_slice).collect();
        let cache = SaxCache::new(true);
        let s1 = SaxConfig::new(16, 4, 4);
        let s2 = SaxConfig::new(24, 6, 4);
        // Interleave two configs across two sets; every answer must match
        // a fresh computation regardless of what is already cached.
        for _ in 0..2 {
            for (set, members, data) in [(SetId::FullTrain, &ma, &a), (SetId::Split(42), &mb, &b)] {
                for sax in [&s1, &s2] {
                    let got = cache.words(set, 0, sax, true, members);
                    for (w, s) in got.iter().zip(data) {
                        assert_eq!(*w, discretize(s, sax, true), "{set:?} {sax:?}");
                    }
                }
            }
        }
        // First sweep: 4 distinct word keys + 4 distinct frame keys, all
        // misses. Second sweep: 4 word hits (frames never consulted).
        assert_eq!(cache.stats(), CacheStats { hits: 4, misses: 8 });
    }

    #[test]
    fn disabled_cache_computes_and_stores_nothing() {
        let data = series(2, 48);
        let members: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let cache = SaxCache::disabled();
        let sax = SaxConfig::new(12, 4, 4);
        let w1 = cache.words(SetId::FullTrain, 0, &sax, true, &members);
        let w2 = cache.words(SetId::FullTrain, 0, &sax, true, &members);
        assert_eq!(w1, w2);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn eval_memoizes_including_none() {
        let cache = SaxCache::new(true);
        let sax = SaxConfig::new(8, 4, 4);
        let mut calls = 0usize;
        let v1 = cache.eval(&sax, || {
            calls += 1;
            None
        });
        let v2 = cache.eval(&sax, || {
            calls += 1;
            Some((BTreeMap::new(), 0.5))
        });
        assert_eq!(calls, 1, "second lookup must not recompute");
        assert!(
            v1.is_none() && v2.is_none(),
            "first (None) answer is sticky"
        );
    }

    #[test]
    fn column_fingerprints_distinguish_patterns() {
        let cache = SaxCache::new(true);
        let p1 = vec![1.0, 2.0, 3.0];
        let p2 = vec![1.0, 2.0, 3.0 + 1e-12];
        let k = MatchKernel::Rolling;
        let c1 = cache.column(SetId::FullTrain, &p1, false, true, k, || vec![0.1]);
        let c2 = cache.column(SetId::FullTrain, &p2, false, true, k, || vec![0.2]);
        let c1_again = cache.column(SetId::FullTrain, &p1, false, true, k, || vec![9.9]);
        assert_eq!(*c1, vec![0.1]);
        assert_eq!(
            *c2,
            vec![0.2],
            "bit-different patterns get their own column"
        );
        assert_eq!(*c1_again, vec![0.1], "exact repeat is served from memory");
        let naive = cache.column(
            SetId::FullTrain,
            &p1,
            false,
            true,
            MatchKernel::Naive,
            || vec![0.3],
        );
        assert_eq!(*naive, vec![0.3], "kernels get separate columns");
    }

    #[test]
    fn concurrent_lookups_agree() {
        let data = series(6, 96);
        let members: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        let cache = SaxCache::new(true);
        let sax = SaxConfig::new(16, 4, 5);
        let reference = cache.words(SetId::FullTrain, 0, &sax, true, &members);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let got = cache.words(SetId::FullTrain, 0, &sax, true, &members);
                    assert_eq!(got, reference);
                });
            }
        });
    }
}
