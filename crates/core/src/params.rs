//! SAX parameter selection — Algorithm 3 and the DIRECT variant (§4).
//!
//! The objective of a parameter combination is `1 − F` where `F` is the
//! F-measure obtained on held-out validation splits: mine candidates on
//! the split's training part, select representative patterns, transform
//! both parts, train the SVM on the training part and score the
//! validation part. (The paper's pseudocode nests a further five-fold CV
//! inside the validation slice; scoring a model trained on the split's
//! training part is equivalent in expectation and robust for the very
//! small classes in the suite — recorded as a deviation in DESIGN.md.)
//!
//! `per_class` mode reproduces the paper exactly: each class gets its own
//! optimized combination (the objective extracts that class's F-measure),
//! and the final model merges the per-class pattern sets with one more
//! feature-selection pass (§4.3 — that merge lives in
//! `RpmClassifier::train_with_configs`). Shared mode optimizes one
//! combination against the macro F-measure at a fraction of the cost.

use crate::config::{ParamSearch, RpmConfig};
use crate::model::RpmClassifier;
use rpm_ml::{macro_f1, per_class_f1, shuffled_stratified_split};
use rpm_opt::{direct_minimize_integer, DirectParams};
use rpm_sax::SaxConfig;
use rpm_ts::{Dataset, Label};
use std::collections::BTreeMap;

/// Result of the parameter search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Chosen SAX configuration per class.
    pub per_class: BTreeMap<Label, SaxConfig>,
    /// Distinct parameter combinations evaluated (the paper's `R`).
    pub evaluations: usize,
}

/// Integer search bounds `(window, paa, alphabet)` derived from the
/// training series lengths: windows span an eighth to half of the
/// shortest series, PAA sizes 3..=8, alphabets 3..=8 — the region the
/// GrammarViz line of work searches.
pub fn default_bounds(train: &Dataset) -> ([i64; 3], [i64; 3]) {
    let min_len = train.min_len().max(8) as i64;
    let w_hi = (min_len / 2).max(8);
    let w_lo = (min_len / 8).clamp(4, w_hi);
    ([w_lo, 3, 3], [w_hi, 8, 8])
}

/// Builds a [`SaxConfig`] from a rounded DIRECT/grid point, clamping the
/// PAA size to the window (a word cannot be longer than its window).
fn sax_from_point(p: &[i64]) -> SaxConfig {
    let window = p[0].max(2) as usize;
    let paa = (p[1].max(2) as usize).min(window);
    let alpha = (p[2].clamp(2, 12)) as usize;
    SaxConfig::new(window, paa, alpha)
}

/// Scores one parameter combination: mean F-measure over the validation
/// splits, per class (map) plus macro. Returns `None` when no split could
/// train (no candidates / degenerate split).
fn evaluate_combination(
    train: &Dataset,
    config: &RpmConfig,
    sax: &SaxConfig,
) -> Option<(BTreeMap<Label, f64>, f64)> {
    let classes = train.classes();
    let mut f_sums: BTreeMap<Label, f64> = classes.iter().map(|&c| (c, 0.0)).collect();
    let mut macro_sum = 0.0;
    let mut scored_splits = 0usize;

    for split_idx in 0..config.n_validation_splits.max(1) {
        let (tr_idx, va_idx) = shuffled_stratified_split(
            &train.labels,
            config.validation_train_fraction,
            config.seed ^ (split_idx as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        if va_idx.is_empty() {
            continue;
        }
        let sub_train = train.subset(&tr_idx);
        let validate = train.subset(&va_idx);
        if sub_train.n_classes() < 2 {
            continue;
        }
        let per_class_sax: BTreeMap<Label, SaxConfig> =
            sub_train.classes().iter().map(|&c| (c, *sax)).collect();
        // Avoid nested parameter search: train with these explicit configs.
        let model = match RpmClassifier::train_with_configs(&sub_train, config, &per_class_sax) {
            Ok(m) => m,
            Err(_) => continue, // pruning: abandon this combination's split
        };
        let preds = model.predict_batch(&validate.series);
        let f1s = per_class_f1(&validate.labels, &preds);
        for (&c, f) in &f1s {
            *f_sums.entry(c).or_insert(0.0) += f;
        }
        macro_sum += macro_f1(&validate.labels, &preds);
        scored_splits += 1;
    }
    if scored_splits == 0 {
        return None;
    }
    let n = scored_splits as f64;
    for f in f_sums.values_mut() {
        *f /= n;
    }
    Some((f_sums, macro_sum / n))
}

/// Runs the configured search and returns per-class configurations.
///
/// # Panics
/// Panics when called with a `Fixed`/`PerClassFixed` strategy (those need
/// no search) — `RpmClassifier::train` never does.
pub fn search_parameters(train: &Dataset, config: &RpmConfig) -> SearchOutcome {
    match &config.param_search {
        ParamSearch::Fixed(_) | ParamSearch::PerClassFixed(_) => {
            panic!("search_parameters called with a fixed strategy")
        }
        ParamSearch::Direct { max_evals, per_class } => {
            direct_search(train, config, *max_evals, *per_class)
        }
        ParamSearch::Grid { windows, paas, alphas, per_class } => {
            grid_search(train, config, windows, paas, alphas, *per_class)
        }
    }
}

fn direct_search(
    train: &Dataset,
    config: &RpmConfig,
    max_evals: usize,
    per_class: bool,
) -> SearchOutcome {
    let (lo, hi) = default_bounds(train);
    let classes = train.classes();
    let direct_params = DirectParams {
        // Raw proposals; distinct integer points are cached, and roughly
        // half the proposals round onto already-seen combinations.
        max_evals: max_evals * 2,
        max_iters: 40,
        eps: 1e-4,
    };
    let mut evaluations = 0usize;
    let mut per_class_out: BTreeMap<Label, SaxConfig> = BTreeMap::new();

    if per_class {
        for &target in &classes {
            let (point, _f, n) = direct_minimize_integer(
                |p| {
                    let sax = sax_from_point(p);
                    match evaluate_combination(train, config, &sax) {
                        Some((per_cls, _)) => 1.0 - per_cls.get(&target).copied().unwrap_or(0.0),
                        None => 1.0,
                    }
                },
                &lo,
                &hi,
                &direct_params,
            );
            evaluations += n;
            per_class_out.insert(target, sax_from_point(&point));
        }
    } else {
        let (point, _f, n) = direct_minimize_integer(
            |p| {
                let sax = sax_from_point(p);
                match evaluate_combination(train, config, &sax) {
                    Some((_, macro_f)) => 1.0 - macro_f,
                    None => 1.0,
                }
            },
            &lo,
            &hi,
            &direct_params,
        );
        evaluations = n;
        let sax = sax_from_point(&point);
        per_class_out = classes.iter().map(|&c| (c, sax)).collect();
    }
    SearchOutcome { per_class: per_class_out, evaluations }
}

fn grid_search(
    train: &Dataset,
    config: &RpmConfig,
    windows: &[usize],
    paas: &[usize],
    alphas: &[usize],
    per_class: bool,
) -> SearchOutcome {
    let classes = train.classes();
    // best per class: (score, config)
    let mut best: BTreeMap<Label, (f64, SaxConfig)> = BTreeMap::new();
    let mut best_shared: (f64, Option<SaxConfig>) = (-1.0, None);
    let mut evaluations = 0usize;

    for &w in windows {
        for &p in paas {
            for &a in alphas {
                if w < 2 || w > train.min_len() {
                    continue; // pruning: infeasible window
                }
                let sax = sax_from_point(&[w as i64, p as i64, a as i64]);
                let Some((per_cls, macro_f)) = evaluate_combination(train, config, &sax)
                else {
                    continue;
                };
                evaluations += 1;
                for (&c, &f) in &per_cls {
                    let e = best.entry(c).or_insert((-1.0, sax));
                    if f > e.0 {
                        *e = (f, sax);
                    }
                }
                if macro_f > best_shared.0 {
                    best_shared = (macro_f, Some(sax));
                }
            }
        }
    }

    let fallback = SaxConfig::new(
        (train.min_len() / 4).max(4),
        4,
        4,
    );
    let per_class_out: BTreeMap<Label, SaxConfig> = if per_class {
        classes
            .iter()
            .map(|&c| (c, best.get(&c).map(|e| e.1).unwrap_or(fallback)))
            .collect()
    } else {
        let shared = best_shared.1.unwrap_or(fallback);
        classes.iter().map(|&c| (c, shared)).collect()
    };
    SearchOutcome { per_class: per_class_out, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("p", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..10 {
                let mut s: Vec<f64> =
                    (0..96).map(|_| 0.2 * (rng.gen::<f64>() - 0.5)).collect();
                let at = rng.gen_range(0..96 - 20);
                for i in 0..20 {
                    let t = std::f64::consts::TAU * i as f64 / 20.0;
                    s[at + i] += 3.0 * if class == 0 { t.sin() } else { (2.0 * t).sin() };
                }
                d.push(s, class);
            }
        }
        d
    }

    #[test]
    fn bounds_are_ordered_and_feasible() {
        let d = dataset(1);
        let (lo, hi) = default_bounds(&d);
        for i in 0..3 {
            assert!(lo[i] <= hi[i], "{lo:?} vs {hi:?}");
        }
        assert!(hi[0] <= 96 / 2);
        assert!(lo[0] >= 4);
    }

    #[test]
    fn sax_from_point_clamps() {
        let s = sax_from_point(&[10, 50, 30]);
        assert_eq!(s.window, 10);
        assert_eq!(s.paa_size, 10, "paa clamped to window");
        assert_eq!(s.alphabet, 12, "alphabet clamped to 12");
    }

    #[test]
    fn evaluate_combination_scores_sane_params() {
        let d = dataset(2);
        let cfg = RpmConfig::default();
        let sax = SaxConfig::new(20, 4, 4);
        let (per_cls, macro_f) = evaluate_combination(&d, &cfg, &sax).expect("scorable");
        assert!(per_cls.len() == 2);
        for f in per_cls.values() {
            assert!((0.0..=1.0).contains(f));
        }
        assert!((0.0..=1.0).contains(&macro_f));
    }

    #[test]
    fn evaluate_combination_prunes_oversized_window() {
        let d = dataset(3);
        let cfg = RpmConfig::default();
        let sax = SaxConfig::new(500, 4, 4);
        assert!(evaluate_combination(&d, &cfg, &sax).is_none());
    }

    #[test]
    fn shared_direct_search_returns_uniform_configs() {
        let d = dataset(4);
        let cfg = RpmConfig {
            param_search: ParamSearch::Direct { max_evals: 6, per_class: false },
            n_validation_splits: 1,
            ..RpmConfig::default()
        };
        let out = search_parameters(&d, &cfg);
        assert_eq!(out.per_class.len(), 2);
        let first = out.per_class[&0];
        assert_eq!(out.per_class[&1], first, "shared mode: same config everywhere");
        assert!(out.evaluations >= 1);
    }

    #[test]
    fn grid_search_picks_feasible_configs() {
        let d = dataset(5);
        let cfg = RpmConfig {
            param_search: ParamSearch::Grid {
                windows: vec![16, 24],
                paas: vec![4],
                alphas: vec![4],
                per_class: true,
            },
            n_validation_splits: 1,
            ..RpmConfig::default()
        };
        let out = search_parameters(&d, &cfg);
        assert_eq!(out.per_class.len(), 2);
        for s in out.per_class.values() {
            assert!(s.window == 16 || s.window == 24);
        }
        assert!(out.evaluations <= 2);
    }

    #[test]
    fn grid_search_skips_infeasible_windows() {
        let d = dataset(6);
        let cfg = RpmConfig {
            param_search: ParamSearch::Grid {
                windows: vec![500],
                paas: vec![4],
                alphas: vec![4],
                per_class: false,
            },
            n_validation_splits: 1,
            ..RpmConfig::default()
        };
        let out = search_parameters(&d, &cfg);
        assert_eq!(out.evaluations, 0);
        // Falls back to a sane default rather than panicking.
        assert!(out.per_class[&0].window <= 96);
    }

    #[test]
    #[should_panic(expected = "fixed strategy")]
    fn fixed_strategy_panics_in_search() {
        let d = dataset(7);
        let cfg = RpmConfig::fixed(SaxConfig::new(8, 4, 4));
        search_parameters(&d, &cfg);
    }
}
