//! SAX parameter selection — Algorithm 3 and the DIRECT variant (§4).
//!
//! The objective of a parameter combination is `1 − F` where `F` is the
//! F-measure obtained on held-out validation splits: mine candidates on
//! the split's training part, select representative patterns, transform
//! both parts, train the SVM on the training part and score the
//! validation part. (The paper's pseudocode nests a further five-fold CV
//! inside the validation slice; scoring a model trained on the split's
//! training part is equivalent in expectation and robust for the very
//! small classes in the suite — recorded as a deviation in DESIGN.md.)
//!
//! `per_class` mode reproduces the paper exactly: each class gets its own
//! optimized combination (the objective extracts that class's F-measure),
//! and the final model merges the per-class pattern sets with one more
//! feature-selection pass (§4.3 — that merge lives in
//! `RpmClassifier::train_with_configs`). Shared mode optimizes one
//! combination against the macro F-measure at a fraction of the cost.
//!
//! Every mode runs on the shared training engine with deterministic
//! merges, so `n_threads > 1` returns bit-identical outcomes to serial:
//! grid points evaluate in parallel but reduce serially in enumeration
//! order; per-class DIRECT runs are independent and merge in class order;
//! shared DIRECT batches its proposals inside the optimizer. Combination
//! scores are memoized in the run's [`SaxCache`], so overlapping DIRECT
//! probes pay for each distinct combination once.

use crate::budget::BudgetState;
use crate::cache::{Ctx, SaxCache, SetId};
use crate::config::{ParamSearch, RpmConfig};
use crate::engine::{Engine, EngineError};
use crate::model::{RpmClassifier, TrainError};
use rpm_ml::{macro_f1, per_class_f1, shuffled_stratified_split};
use rpm_opt::{direct_minimize_integer, DirectParams};
use rpm_sax::SaxConfig;
use rpm_ts::{Dataset, Label};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Duration;

/// One combination's validation score: per-class F-measures plus macro.
type CombinationScore = (BTreeMap<Label, f64>, f64);

/// Result of the parameter search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Chosen SAX configuration per class.
    pub per_class: BTreeMap<Label, SaxConfig>,
    /// Distinct parameter combinations evaluated (the paper's `R`).
    pub evaluations: usize,
    /// The search ran out of [`crate::TrainBudget`] before finishing:
    /// `per_class` holds the best parameters scored so far rather than
    /// the full search's choice.
    pub degraded: bool,
}

/// Integer search bounds `(window, paa, alphabet)` derived from the
/// training series lengths: windows span an eighth to half of the
/// shortest series, PAA sizes 3..=8, alphabets 3..=8 — the region the
/// GrammarViz line of work searches.
pub fn default_bounds(train: &Dataset) -> ([i64; 3], [i64; 3]) {
    let min_len = train.min_len().max(8) as i64;
    let w_hi = (min_len / 2).max(8);
    let w_lo = (min_len / 8).clamp(4, w_hi);
    ([w_lo, 3, 3], [w_hi, 8, 8])
}

/// Builds a [`SaxConfig`] from a rounded DIRECT/grid point, clamping the
/// PAA size to the window (a word cannot be longer than its window).
fn sax_from_point(p: &[i64]) -> SaxConfig {
    let window = p[0].max(2) as usize;
    let paa = (p[1].max(2) as usize).min(window);
    let alpha = (p[2].clamp(2, 12)) as usize;
    SaxConfig::new(window, paa, alpha)
}

/// Scores one parameter combination: mean F-measure over the validation
/// splits, per class (map) plus macro. Returns `Ok(None)` when no split
/// could train (no candidates / degenerate split); `Err` when a fold
/// worker failed. Memoized per [`SaxConfig`] in the run's cache.
fn evaluate_combination(
    train: &Dataset,
    config: &RpmConfig,
    sax: &SaxConfig,
    ctx: &Ctx<'_>,
) -> Result<Option<CombinationScore>, TrainError> {
    let mut failure: Option<TrainError> = None;
    let value = ctx.cache.eval(sax, || {
        // Only fresh evaluations spend budget; cache hits and
        // checkpoint-restored scores short-circuit above this closure.
        if let Some(budget) = ctx.budget {
            if !budget.try_claim() {
                return None; // unscored: the search degrades to best-so-far
            }
        }
        let t0 = rpm_obs::enabled().then(rpm_obs::now_ns);
        // The unwind boundary makes a panicking evaluation — the
        // `params.eval` fault site, or a genuine bug — a typed error on
        // every search path, including shared DIRECT where the objective
        // runs outside any engine job.
        let out = match catch_unwind(AssertUnwindSafe(|| {
            rpm_obs::fault::fire("params.eval");
            evaluate_combination_uncached(train, config, sax, ctx)
        })) {
            Ok(Ok(v)) => v,
            Ok(Err(e)) => {
                failure = Some(e);
                None
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                failure = Some(TrainError::Engine(EngineError::WorkerPanicked(msg)));
                None
            }
        };
        if let Some(t0) = t0 {
            let m = rpm_obs::metrics();
            m.params_evals.inc();
            m.params_eval.observe(rpm_obs::now_ns().saturating_sub(t0));
        }
        if failure.is_none() {
            if let Some(checkpoint) = ctx.checkpoint {
                checkpoint.record(sax, &out);
            }
        }
        out
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(value),
    }
}

fn evaluate_combination_uncached(
    train: &Dataset,
    config: &RpmConfig,
    sax: &SaxConfig,
    ctx: &Ctx<'_>,
) -> Result<Option<CombinationScore>, TrainError> {
    let _span = rpm_obs::span!("eval");
    let classes = train.classes();
    let n_splits = config.n_validation_splits.max(1);

    // Folds fan out on the engine (serial in practice when a grid point /
    // DIRECT class already spent the budget); the reduction below walks
    // them in split order, so the float sums match the serial loop.
    let folds = ctx.engine.run(n_splits, |split_idx| {
        rpm_obs::metrics().params_folds.inc();
        let split_seed = config.seed ^ (split_idx as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let (tr_idx, va_idx) =
            shuffled_stratified_split(&train.labels, config.validation_train_fraction, split_seed);
        if va_idx.is_empty() {
            return None;
        }
        let sub_train = train.subset(&tr_idx);
        let validate = train.subset(&va_idx);
        if sub_train.n_classes() < 2 {
            return None;
        }
        let per_class_sax: BTreeMap<Label, SaxConfig> =
            sub_train.classes().iter().map(|&c| (c, *sax)).collect();
        // Avoid nested parameter search: train with these explicit
        // configs. The fold context is keyed by the split's identity so
        // cached artifacts never leak across different subsets.
        let fold_ctx = ctx.serial().with_set(SetId::Split(split_seed));
        let model = match RpmClassifier::train_with_configs_ctx(
            &sub_train,
            config,
            &per_class_sax,
            &fold_ctx,
        ) {
            Ok(m) => m,
            Err(_) => return None, // pruning: abandon this combination's split
        };
        let preds = model.predict_batch(&validate.series);
        Some((
            per_class_f1(&validate.labels, &preds),
            macro_f1(&validate.labels, &preds),
        ))
    })?;

    let mut f_sums: BTreeMap<Label, f64> = classes.iter().map(|&c| (c, 0.0)).collect();
    let mut macro_sum = 0.0;
    let mut scored_splits = 0usize;
    for (f1s, macro_f) in folds.into_iter().flatten() {
        for (c, f) in f1s {
            *f_sums.entry(c).or_insert(0.0) += f;
        }
        macro_sum += macro_f;
        scored_splits += 1;
    }
    if scored_splits == 0 {
        return Ok(None);
    }
    let n = scored_splits as f64;
    for f in f_sums.values_mut() {
        *f /= n;
    }
    Ok(Some((f_sums, macro_sum / n)))
}

/// Runs the configured search and returns per-class configurations,
/// using `config.n_threads` workers and the `config.cache` memoization
/// policy. Results are identical for any thread count.
///
/// # Panics
/// Panics when called with a `Fixed`/`PerClassFixed` strategy (those need
/// no search) — `RpmClassifier::train` never does.
pub fn search_parameters(train: &Dataset, config: &RpmConfig) -> Result<SearchOutcome, TrainError> {
    let cache = SaxCache::new(config.cache);
    let budget = BudgetState::new(&config.budget);
    let ctx = Ctx::new(Engine::new(config.n_threads), &cache).with_budget(&budget);
    search_parameters_ctx(train, config, &ctx)
}

/// [`search_parameters`] inside an existing training context.
pub(crate) fn search_parameters_ctx(
    train: &Dataset,
    config: &RpmConfig,
    ctx: &Ctx<'_>,
) -> Result<SearchOutcome, TrainError> {
    let _span = rpm_obs::span!("params");
    let mut outcome = match &config.param_search {
        ParamSearch::Fixed(_) | ParamSearch::PerClassFixed(_) => {
            panic!("search_parameters called with a fixed strategy")
        }
        ParamSearch::Direct {
            max_evals,
            per_class,
        } => direct_search(train, config, *max_evals, *per_class, ctx),
        ParamSearch::Grid {
            windows,
            paas,
            alphas,
            per_class,
        } => grid_search(train, config, windows, paas, alphas, *per_class, ctx),
    }?;
    outcome.degraded = ctx.budget.is_some_and(BudgetState::exhausted);
    if outcome.degraded {
        rpm_obs::metrics().train_degraded.inc();
    }
    Ok(outcome)
}

fn direct_params_for(
    max_evals: usize,
    n_threads: usize,
    wall_clock: Option<Duration>,
) -> DirectParams {
    DirectParams {
        // Raw proposals; distinct integer points are cached, and roughly
        // half the proposals round onto already-seen combinations.
        max_evals: max_evals * 2,
        max_iters: 40,
        eps: 1e-4,
        n_threads,
        wall_clock,
    }
}

fn direct_search(
    train: &Dataset,
    config: &RpmConfig,
    max_evals: usize,
    per_class: bool,
    ctx: &Ctx<'_>,
) -> Result<SearchOutcome, TrainError> {
    let (lo, hi) = default_bounds(train);
    let classes = train.classes();

    if per_class {
        // One independent DIRECT run per class: classes fan out across
        // the engine's workers, each run serial inside. The objective
        // returns `f64`, so a fold failure is parked in a slot and
        // re-raised once the optimizer returns.
        let runs = ctx.engine.map(&classes, |_, &target| {
            let sub = ctx.serial();
            let failure: Mutex<Option<TrainError>> = Mutex::new(None);
            let (point, _f, n) = direct_minimize_integer(
                |p| {
                    let sax = sax_from_point(p);
                    match evaluate_combination(train, config, &sax, &sub) {
                        Ok(Some((per_cls, _))) => {
                            1.0 - per_cls.get(&target).copied().unwrap_or(0.0)
                        }
                        Ok(None) => 1.0,
                        Err(e) => {
                            if let Ok(mut slot) = failure.lock() {
                                slot.get_or_insert(e);
                            }
                            1.0
                        }
                    }
                },
                &lo,
                &hi,
                &direct_params_for(max_evals, 1, ctx.budget.and_then(BudgetState::remaining)),
            );
            match failure.into_inner().ok().flatten() {
                Some(e) => Err(e),
                None => Ok((sax_from_point(&point), n)),
            }
        })?;
        // Merge in ascending class order, exactly like the serial loop.
        let mut evaluations = 0usize;
        let mut per_class_out: BTreeMap<Label, SaxConfig> = BTreeMap::new();
        for (&target, run) in classes.iter().zip(runs) {
            let (sax, n) = run?;
            evaluations += n;
            per_class_out.insert(target, sax);
        }
        Ok(SearchOutcome {
            per_class: per_class_out,
            evaluations,
            degraded: false,
        })
    } else {
        // One shared run: parallelism lives inside the optimizer, which
        // batch-evaluates its proposals over the engine's worker count.
        let fold_ctx = ctx.serial();
        let failure: Mutex<Option<TrainError>> = Mutex::new(None);
        let (point, _f, n) = direct_minimize_integer(
            |p| {
                let sax = sax_from_point(p);
                match evaluate_combination(train, config, &sax, &fold_ctx) {
                    Ok(Some((_, macro_f))) => 1.0 - macro_f,
                    Ok(None) => 1.0,
                    Err(e) => {
                        if let Ok(mut slot) = failure.lock() {
                            slot.get_or_insert(e);
                        }
                        1.0
                    }
                }
            },
            &lo,
            &hi,
            &direct_params_for(
                max_evals,
                ctx.engine.n_threads(),
                ctx.budget.and_then(BudgetState::remaining),
            ),
        );
        if let Some(e) = failure.into_inner().ok().flatten() {
            return Err(e);
        }
        let sax = sax_from_point(&point);
        Ok(SearchOutcome {
            per_class: classes.iter().map(|&c| (c, sax)).collect(),
            evaluations: n,
            degraded: false,
        })
    }
}

fn grid_search(
    train: &Dataset,
    config: &RpmConfig,
    windows: &[usize],
    paas: &[usize],
    alphas: &[usize],
    per_class: bool,
    ctx: &Ctx<'_>,
) -> Result<SearchOutcome, TrainError> {
    let classes = train.classes();
    // Feasible grid points in enumeration order: window, then PAA, then
    // alphabet — the order the serial nested loops visited.
    let mut points: Vec<SaxConfig> = Vec::new();
    for &w in windows {
        for &p in paas {
            for &a in alphas {
                if w < 2 || w > train.min_len() {
                    continue; // pruning: infeasible window
                }
                points.push(sax_from_point(&[w as i64, p as i64, a as i64]));
            }
        }
    }

    // Every point evaluates in parallel; the reduction below is serial
    // and walks enumeration order with strict `>` comparisons, so ties
    // keep the earliest point — bit-identical to the serial search.
    let scores = ctx.engine.map(&points, |_, sax| {
        evaluate_combination(train, config, sax, &ctx.serial())
    })?;

    let mut best: BTreeMap<Label, (f64, SaxConfig)> = BTreeMap::new();
    let mut best_shared: (f64, Option<SaxConfig>) = (-1.0, None);
    let mut evaluations = 0usize;
    for (sax, score) in points.iter().zip(scores) {
        let Some((per_cls, macro_f)) = score? else {
            continue;
        };
        evaluations += 1;
        for (&c, &f) in &per_cls {
            let e = best.entry(c).or_insert((-1.0, *sax));
            if f > e.0 {
                *e = (f, *sax);
            }
        }
        if macro_f > best_shared.0 {
            best_shared = (macro_f, Some(*sax));
        }
    }

    let fallback = SaxConfig::new((train.min_len() / 4).max(4), 4, 4);
    let per_class_out: BTreeMap<Label, SaxConfig> = if per_class {
        classes
            .iter()
            .map(|&c| (c, best.get(&c).map(|e| e.1).unwrap_or(fallback)))
            .collect()
    } else {
        let shared = best_shared.1.unwrap_or(fallback);
        classes.iter().map(|&c| (c, shared)).collect()
    };
    Ok(SearchOutcome {
        per_class: per_class_out,
        evaluations,
        degraded: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("p", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..10 {
                let mut s: Vec<f64> = (0..96).map(|_| 0.2 * (rng.gen::<f64>() - 0.5)).collect();
                let at = rng.gen_range(0usize..96 - 20);
                for i in 0..20 {
                    let t = std::f64::consts::TAU * i as f64 / 20.0;
                    s[at + i] += 3.0 * if class == 0 { t.sin() } else { (2.0 * t).sin() };
                }
                d.push(s, class);
            }
        }
        d
    }

    fn eval(d: &Dataset, cfg: &RpmConfig, sax: &SaxConfig) -> Option<(BTreeMap<Label, f64>, f64)> {
        let cache = SaxCache::new(cfg.cache);
        let ctx = Ctx::new(Engine::serial(), &cache);
        evaluate_combination(d, cfg, sax, &ctx).unwrap()
    }

    #[test]
    fn bounds_are_ordered_and_feasible() {
        let d = dataset(1);
        let (lo, hi) = default_bounds(&d);
        for i in 0..3 {
            assert!(lo[i] <= hi[i], "{lo:?} vs {hi:?}");
        }
        assert!(hi[0] <= 96 / 2);
        assert!(lo[0] >= 4);
    }

    #[test]
    fn sax_from_point_clamps() {
        let s = sax_from_point(&[10, 50, 30]);
        assert_eq!(s.window, 10);
        assert_eq!(s.paa_size, 10, "paa clamped to window");
        assert_eq!(s.alphabet, 12, "alphabet clamped to 12");
    }

    #[test]
    fn evaluate_combination_scores_sane_params() {
        let d = dataset(2);
        let cfg = RpmConfig::default();
        let sax = SaxConfig::new(20, 4, 4);
        let (per_cls, macro_f) = eval(&d, &cfg, &sax).expect("scorable");
        assert!(per_cls.len() == 2);
        for f in per_cls.values() {
            assert!((0.0..=1.0).contains(f));
        }
        assert!((0.0..=1.0).contains(&macro_f));
    }

    #[test]
    fn evaluate_combination_prunes_oversized_window() {
        let d = dataset(3);
        let cfg = RpmConfig::default();
        let sax = SaxConfig::new(500, 4, 4);
        assert!(eval(&d, &cfg, &sax).is_none());
    }

    #[test]
    fn evaluate_combination_is_memoized() {
        let d = dataset(2);
        let cfg = RpmConfig::default();
        let sax = SaxConfig::new(20, 4, 4);
        let cache = SaxCache::new(true);
        let ctx = Ctx::new(Engine::serial(), &cache);
        let first = evaluate_combination(&d, &cfg, &sax, &ctx).unwrap();
        let evals_after_first = cache.stats();
        let second = evaluate_combination(&d, &cfg, &sax, &ctx).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            cache.stats().hits,
            evals_after_first.hits + 1,
            "second score answered from memory"
        );
    }

    #[test]
    fn parallel_folds_match_serial_scoring() {
        let d = dataset(2);
        let cfg = RpmConfig {
            n_validation_splits: 3,
            ..RpmConfig::default()
        };
        let sax = SaxConfig::new(20, 4, 4);
        let serial = eval(&d, &cfg, &sax);
        let cache = SaxCache::disabled();
        let ctx = Ctx::new(Engine::new(4), &cache);
        let parallel = evaluate_combination(&d, &cfg, &sax, &ctx).unwrap();
        let (s, p) = (serial.expect("scorable"), parallel.expect("scorable"));
        assert_eq!(s.0, p.0);
        assert_eq!(
            s.1.to_bits(),
            p.1.to_bits(),
            "fold reduction order preserved"
        );
    }

    #[test]
    fn shared_direct_search_returns_uniform_configs() {
        let d = dataset(4);
        let cfg = RpmConfig {
            param_search: ParamSearch::Direct {
                max_evals: 6,
                per_class: false,
            },
            n_validation_splits: 1,
            ..RpmConfig::default()
        };
        let out = search_parameters(&d, &cfg).unwrap();
        assert_eq!(out.per_class.len(), 2);
        let first = out.per_class[&0];
        assert_eq!(
            out.per_class[&1], first,
            "shared mode: same config everywhere"
        );
        assert!(out.evaluations >= 1);
    }

    #[test]
    fn grid_search_picks_feasible_configs() {
        let d = dataset(5);
        let cfg = RpmConfig {
            param_search: ParamSearch::Grid {
                windows: vec![16, 24],
                paas: vec![4],
                alphas: vec![4],
                per_class: true,
            },
            n_validation_splits: 1,
            ..RpmConfig::default()
        };
        let out = search_parameters(&d, &cfg).unwrap();
        assert_eq!(out.per_class.len(), 2);
        for s in out.per_class.values() {
            assert!(s.window == 16 || s.window == 24);
        }
        assert!(out.evaluations <= 2);
    }

    #[test]
    fn grid_search_skips_infeasible_windows() {
        let d = dataset(6);
        let cfg = RpmConfig {
            param_search: ParamSearch::Grid {
                windows: vec![500],
                paas: vec![4],
                alphas: vec![4],
                per_class: false,
            },
            n_validation_splits: 1,
            ..RpmConfig::default()
        };
        let out = search_parameters(&d, &cfg).unwrap();
        assert_eq!(out.evaluations, 0);
        // Falls back to a sane default rather than panicking.
        assert!(out.per_class[&0].window <= 96);
    }

    #[test]
    fn parallel_grid_search_matches_serial() {
        let d = dataset(8);
        let base = RpmConfig {
            param_search: ParamSearch::Grid {
                windows: vec![16, 24],
                paas: vec![4],
                alphas: vec![3, 4],
                per_class: true,
            },
            n_validation_splits: 1,
            ..RpmConfig::default()
        };
        let serial = search_parameters(&d, &base).unwrap();
        let parallel = search_parameters(
            &d,
            &RpmConfig {
                n_threads: 4,
                ..base
            },
        )
        .unwrap();
        assert_eq!(serial.per_class, parallel.per_class);
        assert_eq!(serial.evaluations, parallel.evaluations);
    }

    #[test]
    fn parallel_direct_search_matches_serial() {
        let d = dataset(9);
        let base = RpmConfig {
            param_search: ParamSearch::Direct {
                max_evals: 4,
                per_class: true,
            },
            n_validation_splits: 1,
            ..RpmConfig::default()
        };
        let serial = search_parameters(&d, &base).unwrap();
        let parallel = search_parameters(
            &d,
            &RpmConfig {
                n_threads: 4,
                ..base
            },
        )
        .unwrap();
        assert_eq!(serial.per_class, parallel.per_class);
        assert_eq!(serial.evaluations, parallel.evaluations);
    }

    #[test]
    #[should_panic(expected = "fixed strategy")]
    fn fixed_strategy_panics_in_search() {
        let d = dataset(7);
        let cfg = RpmConfig::fixed(SaxConfig::new(8, 4, 4));
        let _ = search_parameters(&d, &cfg);
    }
}
