//! Candidate generation — Algorithm 1 (`FindCandidates`).
//!
//! Per class: discretize every training series with SAX (+ numerosity
//! reduction), feed the word stream into Sequitur with unique sentinel
//! tokens at the series junctions (so no rule ever spans a junction — the
//! paper's Fig. 4 note), map every rule occurrence back to its raw
//! subsequence via the retained word offsets, refine each rule's
//! occurrence set with iterative bisection clustering, and keep the
//! representatives of clusters covering at least `γ` of the class's
//! training instances.

use crate::cache::{Ctx, SaxCache};
use crate::config::GrammarAlgorithm;
use crate::config::RpmConfig;
use crate::engine::Engine;
use crate::transform::pattern_distance_plans;
use rpm_cluster::{bisect_refine, centroid, medoid};
use rpm_grammar::{infer_repair, Sequitur, Token};
use rpm_sax::{SaxConfig, SaxWord};
use rpm_ts::{znorm, BatchedMatch, Label, MatchKernel, MatchPlan};
use std::collections::HashMap;

/// A candidate representative pattern for one class.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The class this candidate represents.
    pub class: Label,
    /// Pattern values (z-normalized domain; centroid or medoid of its
    /// cluster).
    pub values: Vec<f64>,
    /// Total subsequence occurrences in the cluster — the frequency
    /// Algorithm 2 uses to break similarity ties ("the frequency in the
    /// concatenated TS").
    pub frequency: usize,
    /// Distinct training instances covered (the γ test is on this).
    pub coverage: usize,
    /// SAX configuration the candidate was mined with.
    pub sax: SaxConfig,
}

/// Output of candidate generation for one class.
#[derive(Clone, Debug, Default)]
pub struct CandidateSet {
    /// Candidates that passed the γ filter.
    pub candidates: Vec<Candidate>,
    /// Pairwise subsequence distances inside the refined clusters — the
    /// pool the τ threshold percentile is taken from (§3.2.3).
    pub intra_cluster_distances: Vec<f64>,
    /// Number of grammar rules inspected (diagnostics / the paper's
    /// `|rules|` complexity term).
    pub rules_inspected: usize,
}

/// One rule occurrence mapped back to raw coordinates.
#[derive(Clone, Copy, Debug)]
struct Occurrence {
    instance: usize,
    start: usize,
    end: usize, // exclusive
}

/// Runs Algorithm 1 for a single class.
///
/// `members` are the class's training series; `class` is its label;
/// `sax` the discretization granularity. Returns an empty set when the
/// series are shorter than the window or nothing repeats.
pub fn find_candidates_for_class(
    members: &[&[f64]],
    class: Label,
    sax: &SaxConfig,
    config: &RpmConfig,
) -> CandidateSet {
    let cache = SaxCache::disabled();
    let ctx = Ctx::new(Engine::serial(), &cache);
    find_candidates_for_class_ctx(members, class, sax, config, &ctx)
}

/// [`find_candidates_for_class`] inside a training run: discretizations
/// come from the run's cache (keyed by the context's set identity), so
/// parameter-search neighbours sharing a `(window, paa)` or a full
/// `SaxConfig` never re-pay the SAX pass.
pub(crate) fn find_candidates_for_class_ctx(
    members: &[&[f64]],
    class: Label,
    sax: &SaxConfig,
    config: &RpmConfig,
    ctx: &Ctx<'_>,
) -> CandidateSet {
    // Runs on an engine worker when classes fan out, so this span roots
    // its own per-thread stage ("mine_class") in the run report.
    let _span = rpm_obs::span!("mine_class");
    let mut out = CandidateSet::default();
    if members.is_empty() {
        return out;
    }

    // --- Discretize each member separately; windows therefore never cross
    //     junctions, and sentinels below keep the grammar from joining
    //     words across them.
    let all_words = ctx
        .cache
        .words(ctx.set, class, sax, config.numerosity_reduction, members);
    let mut interner: HashMap<SaxWord, Token> = HashMap::new();
    let mut tokens: Vec<Token> = Vec::new();
    // origin[i] = Some((instance, window offset)) for word tokens.
    let mut origin: Vec<Option<(usize, usize)>> = Vec::new();
    let mut next_token: Token = 0;
    let mut sentinel_base: Token = Token::MAX;

    for (inst, words) in all_words.iter().enumerate() {
        for w in words {
            let t = *interner.entry(w.word.clone()).or_insert_with(|| {
                let t = next_token;
                next_token += 1;
                t
            });
            tokens.push(t);
            origin.push(Some((inst, w.offset)));
        }
        // Unique junction sentinel (counted down from Token::MAX so word
        // tokens and sentinels can never collide).
        if inst + 1 < members.len() {
            tokens.push(sentinel_base);
            origin.push(None);
            sentinel_base -= 1;
        }
    }
    if tokens.is_empty() {
        return out;
    }

    // --- Grammar induction over the junction-guarded stream.
    let grammar = match config.grammar {
        GrammarAlgorithm::Sequitur => {
            let mut seq = Sequitur::new();
            for &t in &tokens {
                seq.push(t);
            }
            seq.into_grammar()
        }
        GrammarAlgorithm::RePair => infer_repair(&tokens),
    };

    let min_coverage = ((config.gamma * members.len() as f64).ceil() as usize).max(2);

    for (_, rule) in grammar.repeated_rules() {
        out.rules_inspected += 1;
        // Map occurrences to raw subsequences. Rules cannot contain
        // sentinels (each sentinel occurs once), so every token in the
        // span has an origin.
        let mut occs: Vec<Occurrence> = Vec::with_capacity(rule.occurrences.len());
        for span in &rule.occurrences {
            let (inst, start) = match origin[span.start] {
                Some(o) => o,
                None => continue, // defensive; cannot happen for rules
            };
            let (last_inst, last_off) = match origin[span.end - 1] {
                Some(o) => o,
                None => continue,
            };
            if last_inst != inst {
                continue; // defensive junction guard
            }
            let end = (last_off + sax.window).min(members[inst].len());
            if end > start {
                occs.push(Occurrence {
                    instance: inst,
                    start,
                    end,
                });
            }
        }
        if occs.len() < 2 {
            continue;
        }
        // Cap the O(u³) clustering input (uniform subsample, documented in
        // DESIGN.md).
        if occs.len() > config.max_occurrences_per_rule {
            let step = occs.len() as f64 / config.max_occurrences_per_rule as f64;
            occs = (0..config.max_occurrences_per_rule)
                .map(|i| occs[(i as f64 * step) as usize])
                .collect();
        }

        // Materialize the subsequences once, and a match plan per
        // subsequence: refinement, the τ pool, and medoid selection all
        // compare the same O(u) subsequences O(u²) times, so the per-
        // pattern preparation (z-normalization + |zp| sort) is paid once
        // here instead of once per pair.
        let subs: Vec<&[f64]> = occs
            .iter()
            .map(|o| &members[o.instance][o.start..o.end])
            .collect();
        let plans: Vec<MatchPlan> = subs
            .iter()
            .map(|s| MatchPlan::with_kernel(s, config.kernel))
            .collect();

        // Under the batched kernel the full u×u distance matrix is filled
        // up front: for each subsequence j, every strictly-shorter (or
        // equal-length, scanned directionally) subsequence slides over it
        // in one pattern-set cascade scan. Refinement, the τ pool, and
        // medoid selection then read the matrix instead of re-scanning.
        let matrix: Option<Vec<f64>> = (config.kernel == MatchKernel::Batched)
            .then(|| pairwise_matrix(&subs, &plans, config.early_abandon));
        let dist = |i: usize, j: usize| match &matrix {
            Some(m) => m[i * plans.len() + j],
            None => pattern_distance_plans(&plans[i], &plans[j], config.early_abandon),
        };

        // --- Refinement: iterative bisection with complete linkage over
        //     closest-match distances.
        let clusters = bisect_refine(subs.len(), &dist, &config.bisect);

        for cluster in clusters {
            // γ filter on distinct instance coverage.
            let mut insts: Vec<usize> = cluster.iter().map(|&i| occs[i].instance).collect();
            insts.sort_unstable();
            insts.dedup();
            if insts.len() < min_coverage {
                continue;
            }
            // Record the τ pool.
            for (a, &i) in cluster.iter().enumerate() {
                for &j in &cluster[a + 1..] {
                    out.intra_cluster_distances.push(dist(i, j));
                }
            }
            let members_refs: Vec<&[f64]> = cluster.iter().map(|&i| subs[i]).collect();
            let values = if config.use_medoid {
                let cluster_refs: Vec<&usize> = cluster.iter().collect();
                let m = medoid(&cluster_refs, |&a, &b| dist(a, b)).expect("cluster is non-empty");
                znorm(members_refs[m])
            } else {
                centroid(&members_refs).expect("cluster is non-empty")
            };
            out.candidates.push(Candidate {
                class,
                values,
                frequency: cluster.len(),
                coverage: insts.len(),
                sax: *sax,
            });
        }
    }
    let m = rpm_obs::metrics();
    m.mine_rules.add(out.rules_inspected as u64);
    m.mine_candidates.add(out.candidates.len() as u64);
    out
}

/// Full u×u pairwise closest-match distance matrix (row-major), filled
/// with pattern-set scans. For each subsequence `j`, every other
/// subsequence no longer than it slides over `subs[j]` in one batched
/// cascade pass, which preserves the exact orientation rule of
/// [`pattern_distance_plans`]: the shorter side is the pattern, and on
/// equal lengths the first argument slides — so equal-length pairs get
/// their own directional scan per cell while strictly-shorter results
/// are mirrored. The diagonal is left 0.0 and never queried (both
/// `bisect_refine` and `medoid` skip self-pairs).
fn pairwise_matrix(subs: &[&[f64]], plans: &[MatchPlan], early_abandon: bool) -> Vec<f64> {
    let u = plans.len();
    let mut m = vec![0.0; u * u];
    for j in 0..u {
        let idx: Vec<usize> = (0..u)
            .filter(|&i| i != j && plans[i].len() <= plans[j].len())
            .collect();
        if idx.is_empty() {
            continue;
        }
        let refs: Vec<&MatchPlan> = idx.iter().map(|&i| &plans[i]).collect();
        let set = BatchedMatch::from_refs(&refs);
        for (k, best) in set
            .match_all(subs[j], early_abandon, None)
            .iter()
            .enumerate()
        {
            let i = idx[k];
            let d = best.map_or(f64::INFINITY, |b| b.distance);
            m[i * u + j] = d;
            if plans[i].len() < plans[j].len() {
                m[j * u + i] = d;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::pattern_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a class whose members share a planted sine motif at random
    /// positions over a noisy baseline.
    fn planted_class(n: usize, len: usize, motif_len: usize, seed: u64) -> Vec<Vec<f64>> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut s: Vec<f64> = (0..len).map(|_| 0.3 * (rng.gen::<f64>() - 0.5)).collect();
                let at = rng.gen_range(0..len - motif_len);
                for i in 0..motif_len {
                    s[at + i] += 3.0 * (std::f64::consts::TAU * i as f64 / motif_len as f64).sin();
                }
                s
            })
            .collect()
    }

    fn cfg() -> RpmConfig {
        RpmConfig::default()
    }

    #[test]
    fn planted_motif_is_discovered() {
        let class = planted_class(10, 120, 24, 1);
        let members: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
        let sax = SaxConfig::new(24, 4, 4);
        let set = find_candidates_for_class(&members, 0, &sax, &cfg());
        assert!(!set.candidates.is_empty(), "no candidates found");
        assert!(set.rules_inspected > 0);
        // At least one candidate should match the planted sine closely.
        let template: Vec<f64> = (0..24)
            .map(|i| (std::f64::consts::TAU * i as f64 / 24.0).sin())
            .collect();
        let best = set
            .candidates
            .iter()
            .map(|c| pattern_distance(&c.values, &template, true))
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.5, "closest candidate distance {best}");
    }

    #[test]
    fn gamma_filter_enforces_coverage() {
        let class = planted_class(10, 120, 24, 2);
        let members: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
        let sax = SaxConfig::new(24, 4, 4);
        let set = find_candidates_for_class(&members, 0, &sax, &cfg());
        let min_cov = ((0.2f64 * 10.0).ceil() as usize).max(2);
        for c in &set.candidates {
            assert!(c.coverage >= min_cov, "coverage {} < {min_cov}", c.coverage);
            assert!(c.frequency >= c.coverage);
        }
    }

    #[test]
    fn pure_noise_yields_few_or_no_candidates() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(3);
        let class: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..100).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let members: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
        // Fine granularity: random windows rarely share words.
        let sax = SaxConfig::new(20, 8, 8);
        let set = find_candidates_for_class(&members, 0, &sax, &cfg());
        assert!(
            set.candidates.len() <= 2,
            "noise produced {} candidates",
            set.candidates.len()
        );
    }

    #[test]
    fn window_longer_than_series_yields_nothing() {
        let class = planted_class(5, 50, 10, 4);
        let members: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
        let sax = SaxConfig::new(64, 4, 4);
        let set = find_candidates_for_class(&members, 0, &sax, &cfg());
        assert!(set.candidates.is_empty());
        assert_eq!(set.rules_inspected, 0);
    }

    #[test]
    fn empty_class_yields_nothing() {
        let set = find_candidates_for_class(&[], 0, &SaxConfig::new(8, 4, 4), &cfg());
        assert!(set.candidates.is_empty());
    }

    #[test]
    fn candidate_values_are_znormalized() {
        let class = planted_class(10, 120, 24, 5);
        let members: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
        let set = find_candidates_for_class(&members, 0, &SaxConfig::new(24, 4, 4), &cfg());
        for c in &set.candidates {
            let mean = c.values.iter().sum::<f64>() / c.values.len() as f64;
            assert!(mean.abs() < 0.5, "centroid mean {mean} far from 0");
        }
    }

    #[test]
    fn medoid_option_returns_an_actual_member_shape() {
        let class = planted_class(10, 120, 24, 6);
        let members: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
        let mut config = cfg();
        config.use_medoid = true;
        let set = find_candidates_for_class(&members, 0, &SaxConfig::new(24, 4, 4), &config);
        assert!(!set.candidates.is_empty());
        for c in &set.candidates {
            // Medoids are z-normalized raw members: mean ~0, sd ~1.
            let mean = c.values.iter().sum::<f64>() / c.values.len() as f64;
            let sd = (c
                .values
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f64>()
                / c.values.len() as f64)
                .sqrt();
            assert!(mean.abs() < 1e-9);
            assert!((sd - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn occurrence_cap_is_respected() {
        // A long, strongly periodic class yields rules with many
        // occurrences; the pool must still be bounded.
        let class: Vec<Vec<f64>> = (0..4)
            .map(|k| (0..400).map(|i| ((i + k) as f64 * 0.3).sin()).collect())
            .collect();
        let members: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
        let mut config = cfg();
        config.max_occurrences_per_rule = 16;
        let set = find_candidates_for_class(&members, 0, &SaxConfig::new(20, 4, 4), &config);
        for c in &set.candidates {
            assert!(c.frequency <= 16, "frequency {} exceeds cap", c.frequency);
        }
    }

    #[test]
    fn repair_also_discovers_the_planted_motif() {
        let class = planted_class(10, 120, 24, 8);
        let members: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
        let mut config = cfg();
        config.grammar = crate::config::GrammarAlgorithm::RePair;
        let set = find_candidates_for_class(&members, 0, &SaxConfig::new(24, 4, 4), &config);
        assert!(!set.candidates.is_empty(), "Re-Pair found no candidates");
        let template: Vec<f64> = (0..24)
            .map(|i| (std::f64::consts::TAU * i as f64 / 24.0).sin())
            .collect();
        let best = set
            .candidates
            .iter()
            .map(|c| pattern_distance(&c.values, &template, true))
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.5, "closest Re-Pair candidate distance {best}");
    }

    #[test]
    fn intra_cluster_distances_are_finite_and_nonnegative() {
        let class = planted_class(10, 120, 24, 7);
        let members: Vec<&[f64]> = class.iter().map(Vec::as_slice).collect();
        let set = find_candidates_for_class(&members, 0, &SaxConfig::new(24, 4, 4), &cfg());
        assert!(!set.intra_cluster_distances.is_empty());
        for &d in &set.intra_cluster_distances {
            assert!(d.is_finite() && d >= 0.0);
        }
    }
}
