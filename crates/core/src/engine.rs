//! The shared training engine: a scoped work-stealing thread pool used by
//! every parallel stage of RPM training — per-class parameter search,
//! grid/DIRECT evaluations, validation splits, candidate mining, and
//! batch transforms.
//!
//! Design constraints (DESIGN.md §5, engineering guards):
//!
//! * **Bit-identical results.** Jobs are pure functions of their index;
//!   results are merged *by index*, never by completion order, so a run
//!   with `n` workers produces exactly the serial output. Reductions over
//!   engine output happen in index order in the callers.
//! * **No panicking joins.** A worker panic is caught and surfaced as an
//!   [`EngineError`] instead of poisoning the process (the seed code
//!   `expect`ed on crossbeam joins; that path is gone).
//! * **Std-only.** Workers are `std::thread::scope` threads pulling job
//!   indices from a shared atomic counter — dynamic (work-stealing-like)
//!   scheduling without any external dependency, because the build
//!   environment is offline.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Failure inside an engine worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A job panicked; the payload message is preserved.
    WorkerPanicked(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkerPanicked(msg) => write!(f, "engine worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Handle configuring how much parallelism a training stage may use.
///
/// The engine is a *policy*, not a persistent pool: each [`Engine::run`]
/// call spawns scoped threads for its own job set and joins them before
/// returning, so borrowed data flows into jobs freely. An engine with
/// `n_threads <= 1` executes jobs inline (and is what nested stages
/// receive, so parallelism is spent once, at the outermost stage that
/// fans out).
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    n_threads: usize,
}

impl Engine {
    /// An engine using `n_threads` workers; `0` means one worker per
    /// available CPU.
    pub fn new(n_threads: usize) -> Self {
        let n = if n_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            n_threads
        };
        Self { n_threads: n }
    }

    /// The single-worker engine: jobs run inline on the caller's thread.
    pub fn serial() -> Self {
        Self { n_threads: 1 }
    }

    /// Number of workers this engine spends.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Whether [`Engine::run`] will spawn threads.
    pub fn is_parallel(&self) -> bool {
        self.n_threads > 1
    }

    /// Executes `job(0..n_jobs)` and returns the results in index order.
    ///
    /// With one worker (or fewer than two jobs) everything runs inline;
    /// otherwise `min(n_threads, n_jobs)` scoped workers pull indices
    /// from a shared counter. Either way a panicking job yields
    /// `Err(EngineError::WorkerPanicked)` and the remaining jobs are
    /// abandoned.
    pub fn run<T, F>(&self, n_jobs: usize, job: F) -> Result<Vec<T>, EngineError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // Observability only reads clocks and bumps atomic counters; it
        // never influences scheduling, so instrumented runs return the
        // same bytes as uninstrumented ones.
        let obs = rpm_obs::enabled();
        if obs {
            rpm_obs::metrics().engine_runs.inc();
            rpm_obs::metrics().engine_jobs.add(n_jobs as u64);
        }
        if self.n_threads <= 1 || n_jobs < 2 {
            let t0 = obs.then(rpm_obs::now_ns);
            let mut out = Vec::with_capacity(n_jobs);
            for i in 0..n_jobs {
                // Fault site `engine.job`: an injected failure lands
                // inside the unwind boundary, so it surfaces as the same
                // typed EngineError a real job panic would.
                out.push(
                    catch_unwind(AssertUnwindSafe(|| {
                        rpm_obs::fault::fire("engine.job");
                        job(i)
                    }))
                    .map_err(panic_error)?,
                );
            }
            if let Some(t0) = t0 {
                rpm_obs::metrics()
                    .engine_drain
                    .observe(rpm_obs::now_ns().saturating_sub(t0));
            }
            return Ok(out);
        }

        let n_workers = self.n_threads.min(n_jobs);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
        let failure: Mutex<Option<EngineError>> = Mutex::new(None);

        let t0 = obs.then(rpm_obs::now_ns);
        if obs {
            rpm_obs::metrics()
                .engine_workers_max
                .record_max(n_workers as u64);
        }
        std::thread::scope(|scope| {
            for _ in 0..n_workers {
                scope.spawn(|| {
                    let mut busy_ns = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_jobs {
                            break;
                        }
                        if failure.lock().is_ok_and(|f| f.is_some()) {
                            break; // a sibling already failed; stop early
                        }
                        let job_t0 = obs.then(rpm_obs::now_ns);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            rpm_obs::fault::fire("engine.job");
                            job(i)
                        }));
                        if let Some(job_t0) = job_t0 {
                            busy_ns += rpm_obs::now_ns().saturating_sub(job_t0);
                        }
                        match outcome {
                            Ok(v) => {
                                if let Ok(mut slot) = slots[i].lock() {
                                    *slot = Some(v);
                                }
                            }
                            Err(p) => {
                                if let Ok(mut f) = failure.lock() {
                                    f.get_or_insert(panic_error(p));
                                }
                                break;
                            }
                        }
                    }
                    if busy_ns > 0 {
                        rpm_obs::metrics().engine_busy_ns.add(busy_ns);
                    }
                });
            }
        });
        if let Some(t0) = t0 {
            let drain_ns = rpm_obs::now_ns().saturating_sub(t0);
            let m = rpm_obs::metrics();
            m.engine_drain.observe(drain_ns);
            // Utilization denominator: workers × fan-out wall time.
            m.engine_span_ns.add(drain_ns * n_workers as u64);
        }

        if let Ok(mut f) = failure.lock() {
            if let Some(err) = f.take() {
                return Err(err);
            }
        }
        let mut out = Vec::with_capacity(n_jobs);
        for slot in slots {
            match slot.into_inner() {
                Ok(Some(v)) => out.push(v),
                // Unreachable: every index below n_jobs is claimed by
                // exactly one worker and filled unless a failure was
                // recorded above.
                _ => {
                    return Err(EngineError::WorkerPanicked(
                        "worker exited without producing a result".into(),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// [`Engine::run`] over a slice: `job(index, &items[index])`.
    pub fn map<I, T, F>(&self, items: &[I], job: F) -> Result<Vec<T>, EngineError>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.run(items.len(), |i| job(i, &items[i]))
    }
}

fn panic_error(payload: Box<dyn std::any::Any + Send>) -> EngineError {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    };
    EngineError::WorkerPanicked(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1usize, 2, 4, 16] {
            let engine = Engine::new(threads);
            let out = engine.run(100, |i| i * i).unwrap();
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let engine = Engine::new(0);
        assert!(engine.n_threads() >= 1);
    }

    #[test]
    fn empty_job_set_is_fine() {
        let out: Vec<usize> = Engine::new(4).run(0, |i| i).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn map_passes_items() {
        let items = vec!["a", "bb", "ccc"];
        let out = Engine::new(2).map(&items, |i, s| (i, s.len())).unwrap();
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn panics_become_errors_serial() {
        let err = Engine::serial()
            .run(3, |i| if i == 1 { panic!("boom {i}") } else { i })
            .unwrap_err();
        assert_eq!(err, EngineError::WorkerPanicked("boom 1".into()));
    }

    #[test]
    fn panics_become_errors_parallel() {
        let err = Engine::new(4)
            .run(64, |i| {
                if i == 40 {
                    panic!("kaput");
                }
                i
            })
            .unwrap_err();
        assert_eq!(err, EngineError::WorkerPanicked("kaput".into()));
    }

    #[test]
    fn parallel_matches_serial_on_float_reduction() {
        // The engine itself never reduces; this guards the contract that
        // index-ordered merging keeps downstream float folds identical.
        let serial: Vec<f64> = Engine::serial().run(37, |i| (i as f64).sqrt()).unwrap();
        let parallel = Engine::new(8).run(37, |i| (i as f64).sqrt()).unwrap();
        assert_eq!(serial, parallel);
        let s1: f64 = serial.iter().sum();
        let s2: f64 = parallel.iter().sum();
        assert_eq!(s1.to_bits(), s2.to_bits());
    }
}
