//! Exploratory motif & discord discovery on a single long series — the
//! GrammarViz capability (the paper's refs \[7\]\[31\]) that RPM's candidate
//! machinery is built from. §1 highlights that RPM's class-specific motif
//! discovery "extends beyond the classification task"; this module
//! packages that exploratory side as a standalone API:
//!
//! * [`discover_motifs`] — the variable-length recurring patterns of one
//!   series, ranked by occurrence count (grammar rules mapped back to raw
//!   coordinates),
//! * [`rule_coverage`] — how many grammar-rule intervals cover each point,
//! * [`find_discords`] — rarest-substructure anomalies: the intervals
//!   with the lowest rule coverage (the GrammarViz discord heuristic —
//!   points no rule bothers to describe repeat the least).

use crate::engine::{Engine, EngineError};
use rpm_grammar::Sequitur;
use rpm_sax::{discretize, SaxConfig};

/// One recurring pattern discovered in a series.
#[derive(Clone, Debug)]
pub struct Motif {
    /// `(start, end)` half-open intervals of every occurrence.
    pub occurrences: Vec<(usize, usize)>,
    /// Length of the grammar rule in SAX words.
    pub rule_words: usize,
}

impl Motif {
    /// Number of occurrences.
    pub fn count(&self) -> usize {
        self.occurrences.len()
    }
}

/// A low-coverage (anomalous) interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Discord {
    /// Start offset of the interval.
    pub position: usize,
    /// Interval length (the SAX window).
    pub length: usize,
    /// Mean rule coverage inside the interval (lower = more anomalous).
    pub coverage: f64,
}

/// Infers the grammar of one series and returns every rule as a motif,
/// ordered by descending occurrence count. Returns an empty vector when
/// the series is shorter than the window or nothing repeats.
pub fn discover_motifs(series: &[f64], sax: &SaxConfig) -> Vec<Motif> {
    let _span = rpm_obs::span!("motifs");
    let words = discretize(series, sax, true);
    if words.is_empty() {
        return Vec::new();
    }
    let mut interner = std::collections::HashMap::new();
    let mut seq = Sequitur::new();
    for w in &words {
        let next = interner.len() as u32;
        let t = *interner.entry(w.word.clone()).or_insert(next);
        seq.push(t);
    }
    let grammar = seq.into_grammar();
    let mut motifs: Vec<Motif> = grammar
        .repeated_rules()
        .map(|(_, rule)| {
            let occurrences = rule
                .occurrences
                .iter()
                .map(|span| {
                    let start = words[span.start].offset;
                    let end = (words[span.end - 1].offset + sax.window).min(series.len());
                    (start, end)
                })
                .collect();
            Motif {
                occurrences,
                rule_words: rule.expansion.len(),
            }
        })
        .collect();
    motifs.sort_by_key(|m| std::cmp::Reverse(m.count()));
    motifs
}

/// [`discover_motifs`] over a batch of series on `n_threads` engine
/// workers (`0` = one per CPU). Results are index-aligned with the input
/// and identical to calling [`discover_motifs`] serially per series.
pub fn discover_motifs_batch(
    series: &[Vec<f64>],
    sax: &SaxConfig,
    n_threads: usize,
) -> Result<Vec<Vec<Motif>>, EngineError> {
    Engine::new(n_threads).map(series, |_, s| discover_motifs(s, sax))
}

/// [`find_discords`] over a batch of series on `n_threads` engine
/// workers (`0` = one per CPU). Results are index-aligned with the input.
pub fn find_discords_batch(
    series: &[Vec<f64>],
    sax: &SaxConfig,
    n: usize,
    n_threads: usize,
) -> Result<Vec<Vec<Discord>>, EngineError> {
    Engine::new(n_threads).map(series, |_, s| find_discords(s, sax, n))
}

/// Per-point rule coverage: how many motif occurrence intervals contain
/// each point. The vector has the series' length.
pub fn rule_coverage(series: &[f64], sax: &SaxConfig) -> Vec<u32> {
    let mut cover = vec![0u32; series.len()];
    for motif in discover_motifs(series, sax) {
        for (start, end) in motif.occurrences {
            for c in &mut cover[start..end] {
                *c += 1;
            }
        }
    }
    cover
}

/// Finds the `n` least-covered windows (the GrammarViz discord heuristic),
/// enforcing at least one window of separation between reported discords.
pub fn find_discords(series: &[f64], sax: &SaxConfig, n: usize) -> Vec<Discord> {
    let _span = rpm_obs::span!("discords");
    if series.len() < sax.window || n == 0 {
        return Vec::new();
    }
    let cover = rule_coverage(series, sax);
    // Mean coverage per window via a sliding sum.
    let w = sax.window;
    let mut sums = Vec::with_capacity(series.len() - w + 1);
    let mut acc: f64 = cover[..w].iter().map(|&c| c as f64).sum();
    sums.push(acc);
    for i in w..series.len() {
        acc += cover[i] as f64 - cover[i - w] as f64;
        sums.push(acc);
    }
    let mut order: Vec<usize> = (0..sums.len()).collect();
    order.sort_by(|&a, &b| sums[a].total_cmp(&sums[b]));
    let mut out: Vec<Discord> = Vec::new();
    for p in order {
        if out.len() >= n {
            break;
        }
        if out.iter().any(|d| p.abs_diff(d.position) < w) {
            continue; // trivial match of an already-reported discord
        }
        out.push(Discord {
            position: p,
            length: w,
            coverage: sums[p] / w as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A periodic series with a planted anomaly.
    fn periodic_with_anomaly(len: usize, anomaly_at: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                if (anomaly_at..anomaly_at + 20).contains(&i) {
                    // Flat-line anomaly inside an otherwise periodic signal.
                    3.0
                } else {
                    (i as f64 * 0.4).sin()
                }
            })
            .collect()
    }

    fn sax() -> SaxConfig {
        SaxConfig::new(16, 4, 4)
    }

    #[test]
    fn periodic_series_has_frequent_motifs() {
        let s: Vec<f64> = (0..300).map(|i| (i as f64 * 0.4).sin()).collect();
        let motifs = discover_motifs(&s, &sax());
        assert!(!motifs.is_empty());
        assert!(
            motifs[0].count() >= 3,
            "top motif count {}",
            motifs[0].count()
        );
        // Sorted by descending count.
        for w in motifs.windows(2) {
            assert!(w[0].count() >= w[1].count());
        }
    }

    #[test]
    fn motif_occurrences_are_in_bounds() {
        let s: Vec<f64> = (0..200).map(|i| (i as f64 * 0.3).sin()).collect();
        for m in discover_motifs(&s, &sax()) {
            for (start, end) in &m.occurrences {
                assert!(start < end);
                assert!(*end <= s.len());
            }
        }
    }

    #[test]
    fn coverage_is_low_at_the_anomaly() {
        let s = periodic_with_anomaly(400, 200);
        let cover = rule_coverage(&s, &sax());
        let anomaly_cov: f64 = cover[200..220].iter().map(|&c| c as f64).sum::<f64>() / 20.0;
        let normal_cov: f64 = cover[60..80].iter().map(|&c| c as f64).sum::<f64>() / 20.0;
        assert!(
            anomaly_cov < normal_cov,
            "anomaly {anomaly_cov} vs normal {normal_cov}"
        );
    }

    #[test]
    fn discord_lands_on_the_anomaly() {
        let s = periodic_with_anomaly(400, 200);
        let discords = find_discords(&s, &sax(), 1);
        assert_eq!(discords.len(), 1);
        let d = discords[0];
        assert!(
            (170..=225).contains(&d.position),
            "discord at {} (expected near 200)",
            d.position
        );
    }

    #[test]
    fn discords_are_separated() {
        let s = periodic_with_anomaly(400, 200);
        let discords = find_discords(&s, &sax(), 3);
        for (i, a) in discords.iter().enumerate() {
            for b in &discords[i + 1..] {
                assert!(a.position.abs_diff(b.position) >= 16);
            }
        }
    }

    #[test]
    fn short_series_yield_nothing() {
        assert!(discover_motifs(&[1.0, 2.0], &sax()).is_empty());
        assert!(find_discords(&[1.0, 2.0], &sax(), 2).is_empty());
        assert_eq!(rule_coverage(&[1.0, 2.0], &sax()), vec![0, 0]);
    }

    #[test]
    fn zero_discords_requested() {
        let s = periodic_with_anomaly(200, 100);
        assert!(find_discords(&s, &sax(), 0).is_empty());
    }

    #[test]
    fn batch_discovery_matches_serial() {
        let batch: Vec<Vec<f64>> = (0..5)
            .map(|k| periodic_with_anomaly(300, 60 + 40 * k))
            .collect();
        let motifs = discover_motifs_batch(&batch, &sax(), 4).unwrap();
        let discords = find_discords_batch(&batch, &sax(), 2, 4).unwrap();
        assert_eq!(motifs.len(), batch.len());
        for (i, s) in batch.iter().enumerate() {
            let serial_motifs = discover_motifs(s, &sax());
            assert_eq!(motifs[i].len(), serial_motifs.len());
            for (a, b) in motifs[i].iter().zip(&serial_motifs) {
                assert_eq!(a.occurrences, b.occurrences);
                assert_eq!(a.rule_words, b.rule_words);
            }
            assert_eq!(discords[i], find_discords(s, &sax(), 2));
        }
    }
}
