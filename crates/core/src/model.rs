//! The RPM classifier (training stage §3.2, classification stage §3.1).

use crate::cache::{CacheStats, Ctx, SaxCache};
use crate::candidates::{find_candidates_for_class_ctx, Candidate, CandidateSet};
use crate::config::{ParamSearch, RpmConfig};
use crate::distinct::select_representative_ctx;
use crate::engine::{Engine, EngineError};
use crate::params::search_parameters_ctx;
use crate::transform::{
    batched_match, prepare_patterns, transform_series_batched_counted,
    transform_series_plans_counted, transform_set_ctx, transform_set_plans_engine,
    transform_set_plans_engine_counted,
};
use crate::usage::{render_usage, PatternStats, PatternUsage};
use rpm_ml::{LinearSvm, SvmParams};
use rpm_sax::SaxConfig;
use rpm_ts::{BatchedMatch, Dataset, Label, MatchPlan, Parallelism, ScanCounters};
use std::collections::BTreeMap;
use std::fmt;

/// A trained representative pattern — the candidate that survived
/// Algorithm 2's selection.
pub type Pattern = Candidate;

/// Training failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrainError {
    /// The training set is empty.
    EmptyTrainingSet,
    /// Training data holds fewer than two classes.
    TooFewClasses,
    /// No class produced any candidate under the chosen SAX parameters
    /// (window too long, γ too strict, or nothing repeats).
    NoCandidates,
    /// A training-engine worker failed (a panic inside a parallel stage,
    /// surfaced as an error instead of aborting the process).
    Engine(EngineError),
    /// The parameter-search checkpoint could not be opened or resumed
    /// (corrupt file, unsupported version, or a context mismatch —
    /// resuming against different data or scoring configuration would
    /// silently produce a different model, so it is refused).
    Checkpoint(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTrainingSet => write!(f, "training set is empty"),
            Self::TooFewClasses => write!(f, "training data holds fewer than two classes"),
            Self::NoCandidates => {
                write!(
                    f,
                    "no candidate patterns found; relax gamma or the SAX parameters"
                )
            }
            Self::Engine(e) => write!(f, "training failed: {e}"),
            Self::Checkpoint(msg) => write!(f, "checkpoint unusable: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<EngineError> for TrainError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

/// A trained RPM model: the representative patterns plus the SVM over the
/// transformed feature space.
#[derive(Clone, Debug)]
pub struct RpmClassifier {
    pub(crate) patterns: Vec<Pattern>,
    /// One prepared closest-match plan per pattern (same order as
    /// `patterns`): the per-pattern z-normalization and early-abandon
    /// sort are paid once at construction and reused by every
    /// `transform`/`predict` call. Rebuilt (with the default kernel)
    /// when a model is loaded from disk — the kernel is an execution
    /// strategy, not part of the persisted model.
    pub(crate) plans: Vec<MatchPlan>,
    /// Prebuilt pattern-set scanner backing `plans` when they use the
    /// batched kernel (`None` otherwise): the per-pattern envelope and
    /// tier-1 streams are computed once here and shared by every
    /// `transform`/`predict` call on this model.
    pub(crate) batched: Option<BatchedMatch>,
    pub(crate) svm: LinearSvm,
    pub(crate) per_class_sax: BTreeMap<Label, SaxConfig>,
    pub(crate) rotation_invariant: bool,
    pub(crate) early_abandon: bool,
    /// True when the parameter search ran out of its [`crate::TrainBudget`]
    /// and the model was fit with best-so-far parameters; persisted so a
    /// loaded model still discloses it.
    pub(crate) degraded: bool,
    /// Memoization-cache counters of the training run that produced this
    /// model (zero for models loaded from disk).
    pub(crate) cache_stats: CacheStats,
    /// Serving-path utilization accumulators (one slot per pattern);
    /// populated only while `rpm-obs` is enabled, never persisted.
    pub(crate) usage: PatternUsage,
    /// Training-time reference profile: per-predicted-class distributions
    /// of the drift metrics over the training set, persisted as the
    /// optional `profile` section of model v2 files. `None` for models
    /// saved before the section existed — drift detection then reports
    /// `unavailable` instead of guessing.
    pub(crate) profile: Option<rpm_obs::ReferenceProfile>,
}

/// Reduces one classified series to the quantities the drift sketches
/// track: the winning closest-match distance, the class margin (runner-up
/// class's best distance minus the winning class's), and input summary
/// statistics. `row` is the series' feature vector (one distance per
/// pattern, aligned with `pattern_classes`).
fn drift_sample(
    series: &[f64],
    row: &[f64],
    pattern_classes: &[Label],
    label: Label,
) -> rpm_obs::DriftSample {
    let mut class_best: BTreeMap<Label, f64> = BTreeMap::new();
    for (&class, &d) in pattern_classes.iter().zip(row) {
        let e = class_best.entry(class).or_insert(f64::INFINITY);
        if d < *e {
            *e = d;
        }
    }
    let mut dists: Vec<f64> = class_best.into_values().collect();
    dists.sort_by(f64::total_cmp);
    let best_distance = dists.first().copied().unwrap_or(0.0);
    let margin = if dists.len() > 1 {
        (dists[1] - dists[0]).max(0.0)
    } else {
        0.0
    };
    let n = series.len().max(1) as f64;
    let mean = series.iter().sum::<f64>() / n;
    let var = series
        .iter()
        .map(|v| {
            let d = v - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let stddev = var.sqrt();
    let z_extreme = if stddev > 0.0 {
        series
            .iter()
            .map(|v| ((v - mean) / stddev).abs())
            .fold(0.0, f64::max)
    } else {
        0.0
    };
    rpm_obs::DriftSample {
        class: label,
        best_distance,
        margin,
        len: series.len(),
        mean,
        stddev,
        z_extreme,
    }
}

impl RpmClassifier {
    /// Trains on `train` per `config`, running the configured SAX
    /// parameter search first (§4), then Algorithms 1 + 2, then the SVM.
    pub fn train(train: &Dataset, config: &RpmConfig) -> Result<Self, TrainError> {
        if config.obs.level != rpm_obs::ObsLevel::Off {
            config.obs.install();
        }
        if train.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        let classes = train.classes();
        if classes.len() < 2 {
            return Err(TrainError::TooFewClasses);
        }
        let _train_span = rpm_obs::span!("train");
        // One cache and one engine serve both the parameter search and
        // the final fit: cached values are pure functions of their keys,
        // so combinations probed by the search stay warm for the final
        // training pass (and the surfaced CacheStats cover the whole
        // call).
        let cache = SaxCache::new(config.cache);
        // A checkpoint only makes sense when there is a search to resume;
        // fixed-parameter training ignores `config.checkpoint`.
        let searching = matches!(
            config.param_search,
            ParamSearch::Direct { .. } | ParamSearch::Grid { .. }
        );
        let checkpoint = match &config.checkpoint {
            Some(path) if searching => {
                let fingerprint = crate::checkpoint::context_fingerprint(train, config);
                let (cp, restored) = crate::checkpoint::Checkpoint::open(path, fingerprint)
                    .map_err(|e| TrainError::Checkpoint(e.to_string()))?;
                // Completed evaluations from the previous run become cache
                // hits: the search re-runs only the missing cells and the
                // resumed trajectory is bit-identical to an uninterrupted
                // one (eval scores are pure functions of their SaxConfig).
                for (sax, value) in restored {
                    cache.preload_eval(sax, value);
                }
                Some(cp)
            }
            _ => None,
        };
        let budget = crate::budget::BudgetState::new(&config.budget);
        let ctx = Ctx::new(Engine::new(config.n_threads), &cache)
            .with_budget(&budget)
            .with_checkpoint(checkpoint.as_ref());
        let (per_class_sax, degraded): (BTreeMap<Label, SaxConfig>, bool) =
            match &config.param_search {
                ParamSearch::Fixed(sax) => (classes.iter().map(|&c| (c, *sax)).collect(), false),
                ParamSearch::PerClassFixed(saxes) => {
                    assert_eq!(
                        saxes.len(),
                        classes.len(),
                        "PerClassFixed needs one SaxConfig per class"
                    );
                    (
                        classes.iter().copied().zip(saxes.iter().copied()).collect(),
                        false,
                    )
                }
                ParamSearch::Direct { .. } | ParamSearch::Grid { .. } => {
                    let outcome = search_parameters_ctx(train, config, &ctx)?;
                    (outcome.per_class, outcome.degraded)
                }
            };
        let mut model = Self::train_with_configs_ctx(train, config, &per_class_sax, &ctx)?;
        model.degraded = degraded;
        Ok(model)
    }

    /// Trains with explicit per-class SAX configurations (the §4.3 path
    /// after parameter learning). Exposed for the parameter-search
    /// objective and the benchmarks. Runs on `config.n_threads` workers
    /// with the memoization cache from `config.cache`; results are
    /// identical to the serial path for any thread count.
    pub fn train_with_configs(
        train: &Dataset,
        config: &RpmConfig,
        per_class_sax: &BTreeMap<Label, SaxConfig>,
    ) -> Result<Self, TrainError> {
        let cache = SaxCache::new(config.cache);
        let ctx = Ctx::new(Engine::new(config.n_threads), &cache);
        Self::train_with_configs_ctx(train, config, per_class_sax, &ctx)
    }

    /// [`RpmClassifier::train_with_configs`] inside an existing training
    /// context — the parameter search trains fold models through this so
    /// every stage shares one engine and one cache.
    pub(crate) fn train_with_configs_ctx(
        train: &Dataset,
        config: &RpmConfig,
        per_class_sax: &BTreeMap<Label, SaxConfig>,
        ctx: &Ctx<'_>,
    ) -> Result<Self, TrainError> {
        if train.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        if train.n_classes() < 2 {
            return Err(TrainError::TooFewClasses);
        }
        let _fit_span = rpm_obs::span!("fit");

        // --- Algorithm 1 per class, fanned out across the engine's
        //     workers. The SAX lookup happens before the fan-out so a
        //     missing class still panics on the caller's thread.
        let mine_span = rpm_obs::span!("mine");
        let views = train.by_class();
        let saxes: Vec<SaxConfig> = views
            .iter()
            .map(|view| {
                per_class_sax
                    .get(&view.label)
                    .copied()
                    .unwrap_or_else(|| panic!("missing SaxConfig for class {}", view.label))
            })
            .collect();
        let sets: Vec<CandidateSet> = ctx.engine.map(&views, |i, view| {
            find_candidates_for_class_ctx(
                &view.members,
                view.label,
                &saxes[i],
                config,
                &ctx.serial(),
            )
        })?;
        // Merge in ascending-label order (`by_class` order), exactly as
        // the serial per-class loop did.
        let mut all_candidates: Vec<Candidate> = Vec::new();
        let mut tau_pool: Vec<f64> = Vec::new();
        for set in sets {
            all_candidates.extend(set.candidates);
            tau_pool.extend(set.intra_cluster_distances);
        }
        if all_candidates.is_empty() {
            return Err(TrainError::NoCandidates);
        }
        drop(mine_span);

        // --- Algorithm 2 over the pooled candidates.
        let mut selected = select_representative_ctx(
            all_candidates.clone(),
            &tau_pool,
            &train.series,
            &train.labels,
            config,
            ctx,
        )?;
        if selected.is_empty() {
            // CFS can in principle reject everything on degenerate data;
            // fall back to the deduplicated pool so training still works.
            selected = all_candidates;
        }

        // --- SVM over the transformed training set (training data is
        //     clean, so the plain transform is used here even when
        //     rotation-invariant classification is requested; §6.1). The
        //     selected patterns' columns were cached by the CFS transform
        //     above, so this pass is mostly cache hits.
        let pattern_values: Vec<Vec<f64>> = selected.iter().map(|c| c.values.clone()).collect();
        let svm_span = rpm_obs::span!("svm");
        let rows = transform_set_ctx(
            &train.series,
            &pattern_values,
            false,
            config.early_abandon,
            config.kernel,
            ctx,
        )?;
        let svm = LinearSvm::train(&rows, &train.labels, &config.svm);
        drop(svm_span);

        // --- Reference profile: the training-set distributions of the
        //     drift metrics, keyed by the model's *own* predictions so
        //     serve-time comparisons are apples-to-apples even where the
        //     model disagrees with the training labels.
        let profile_span = rpm_obs::span!("profile");
        let pattern_classes: Vec<Label> = selected.iter().map(|p| p.class).collect();
        let mut profile = rpm_obs::ReferenceProfile::new();
        for (series, row) in train.series.iter().zip(&rows) {
            let label = svm.predict(row);
            profile.observe(&drift_sample(series, row, &pattern_classes, label));
        }
        drop(profile_span);

        let plans = prepare_patterns(&pattern_values, config.kernel);
        let batched = batched_match(&plans);
        let usage = PatternUsage::new(pattern_values.len());
        Ok(Self {
            patterns: selected,
            plans,
            batched,
            svm,
            per_class_sax: per_class_sax.clone(),
            rotation_invariant: config.rotation_invariant,
            early_abandon: config.early_abandon,
            degraded: false,
            cache_stats: ctx.cache.stats(),
            usage,
            profile: Some(profile),
        })
    }

    /// Transforms a series into this model's feature space, reusing the
    /// per-pattern match plans built at training (or load) time.
    pub fn transform(&self, series: &[f64]) -> Vec<f64> {
        self.feature_row(series, None)
    }

    /// One series' feature row: through the prebuilt pattern-set scanner
    /// when the batched kernel is active, per-pattern plans otherwise.
    /// Every single-series transform/predict path funnels here so the
    /// batched set is built once per model, not once per call.
    fn feature_row(&self, series: &[f64], counters: Option<&ScanCounters>) -> Vec<f64> {
        match &self.batched {
            Some(b) => transform_series_batched_counted(
                series,
                &self.plans,
                b,
                self.rotation_invariant,
                self.early_abandon,
                counters,
            ),
            None => transform_series_plans_counted(
                series,
                &self.plans,
                self.rotation_invariant,
                self.early_abandon,
                counters,
            ),
        }
    }

    /// Predicts the class label of one series.
    ///
    /// With observability off this is exactly the PR 2 path (transform +
    /// SVM, zero probes); with it on, the same computation additionally
    /// feeds the `predict.latency_ns`/`predict.match_distance` histograms
    /// and the per-pattern utilization accumulators. Instrumentation only
    /// observes — predictions are bit-identical either way.
    pub fn predict(&self, series: &[f64]) -> Label {
        if !rpm_obs::enabled() {
            return self.svm.predict(&self.transform(series));
        }
        let start = rpm_obs::now_ns();
        let features = self.transform(series);
        self.usage.note(&features);
        let label = self.svm.predict(&features);
        let m = rpm_obs::metrics();
        m.predict_series.inc();
        m.predict_latency
            .observe(rpm_obs::now_ns().saturating_sub(start));
        label
    }

    /// Predicts a batch. The batch is *borrowed*: any slice whose items
    /// view as `&[f64]` works (`&[Vec<f64>]` from a dataset, `&[&[f64]]`
    /// gathered across request buffers) — no sample data is copied to
    /// cross this call.
    pub fn predict_batch<S: AsRef<[f64]>>(&self, series: &[S]) -> Vec<Label> {
        let _span = rpm_obs::span!("predict");
        rpm_obs::metrics().predict_batches.inc();
        // `predict.series` is counted per series inside `predict`.
        series.iter().map(|s| self.predict(s.as_ref())).collect()
    }

    /// The configurable batch entry point: predicts every series in the
    /// borrowed batch under the given [`Parallelism`].
    ///
    /// [`Parallelism::Serial`] is exactly [`RpmClassifier::predict_batch`]
    /// (and cannot fail); [`Parallelism::Threads`] runs the
    /// pattern-distance transform — the classification bottleneck — on
    /// that many engine workers, producing bit-identical labels, with a
    /// worker panic surfacing as an [`EngineError`] instead of aborting
    /// the process.
    pub fn predict_batch_with<S: AsRef<[f64]> + Sync>(
        &self,
        series: &[S],
        parallelism: Parallelism,
    ) -> Result<Vec<Label>, EngineError> {
        if matches!(parallelism, Parallelism::Serial) {
            return Ok(self.predict_batch(series));
        }
        let _span = rpm_obs::span!("predict");
        let m = rpm_obs::metrics();
        m.predict_batches.inc();
        m.predict_series.add(series.len() as u64);
        let rows = transform_set_plans_engine(
            series,
            &self.plans,
            self.rotation_invariant,
            self.early_abandon,
            &Engine::new(parallelism.workers()),
        )?;
        if rpm_obs::enabled() {
            // The parallel path bypasses `predict`; feed utilization from
            // the transformed rows instead (same values, same argmins).
            for row in &rows {
                self.usage.note(row);
            }
        }
        Ok(rows.iter().map(|r| self.svm.predict(r)).collect())
    }

    /// [`predict_batch_with`](Self::predict_batch_with) with an optional
    /// per-request [`ScanCounters`] accumulator — the request-tracing
    /// entry point. With `counters = None` this is exactly
    /// `predict_batch_with` (same code path, same metrics). With an
    /// accumulator attached, the kernel's search volume (searches,
    /// windows, early-abandon count, match wall time) for *this batch
    /// alone* lands in it; counting is integer-only side work, so labels
    /// stay bit-identical either way.
    pub fn predict_batch_traced<S: AsRef<[f64]> + Sync>(
        &self,
        series: &[S],
        parallelism: Parallelism,
        counters: Option<&ScanCounters>,
    ) -> Result<Vec<Label>, EngineError> {
        let Some(counters) = counters else {
            return self.predict_batch_with(series, parallelism);
        };
        let _span = rpm_obs::span!("predict");
        let m = rpm_obs::metrics();
        m.predict_batches.inc();
        m.predict_series.add(series.len() as u64);
        let rows = match parallelism {
            Parallelism::Serial => series
                .iter()
                .map(|s| self.feature_row(s.as_ref(), Some(counters)))
                .collect(),
            Parallelism::Threads(_) => transform_set_plans_engine_counted(
                series,
                &self.plans,
                self.rotation_invariant,
                self.early_abandon,
                &Engine::new(parallelism.workers()),
                Some(counters),
            )?,
        };
        if rpm_obs::enabled() {
            for row in &rows {
                self.usage.note(row);
            }
        }
        Ok(rows.iter().map(|r| self.svm.predict(r)).collect())
    }

    /// [`predict_batch_traced`](Self::predict_batch_traced), additionally
    /// returning one [`rpm_obs::DriftSample`] per series — the serving
    /// path feeds these into the installed drift monitor. The samples are
    /// derived from the same feature rows the SVM sees, so labels stay
    /// bit-identical to every other batch entry point.
    pub fn predict_batch_observed<S: AsRef<[f64]> + Sync>(
        &self,
        series: &[S],
        parallelism: Parallelism,
        counters: Option<&ScanCounters>,
    ) -> Result<Vec<(Label, rpm_obs::DriftSample)>, EngineError> {
        let _span = rpm_obs::span!("predict");
        let m = rpm_obs::metrics();
        m.predict_batches.inc();
        m.predict_series.add(series.len() as u64);
        let rows = match parallelism {
            Parallelism::Serial => series
                .iter()
                .map(|s| self.feature_row(s.as_ref(), counters))
                .collect(),
            Parallelism::Threads(_) => transform_set_plans_engine_counted(
                series,
                &self.plans,
                self.rotation_invariant,
                self.early_abandon,
                &Engine::new(parallelism.workers()),
                counters,
            )?,
        };
        if rpm_obs::enabled() {
            for row in &rows {
                self.usage.note(row);
            }
        }
        let classes: Vec<Label> = self.patterns.iter().map(|p| p.class).collect();
        Ok(series
            .iter()
            .zip(&rows)
            .map(|(s, row)| {
                let label = self.svm.predict(row);
                (label, drift_sample(s.as_ref(), row, &classes, label))
            })
            .collect())
    }

    /// The training-time drift reference profile, when the model carries
    /// one (models persisted before the `profile` section return `None`).
    pub fn reference_profile(&self) -> Option<&rpm_obs::ReferenceProfile> {
        self.profile.as_ref()
    }

    /// Per-pattern utilization accumulated on the serving path while
    /// `rpm-obs` is enabled: argmin (closest-match) counts and mean match
    /// distances, in pattern order. All zeros when observability was off.
    pub fn pattern_usage(&self) -> Vec<PatternStats> {
        self.usage.stats()
    }

    /// Predictions observed by the utilization tracker.
    pub fn usage_observations(&self) -> u64 {
        self.usage.observations()
    }

    /// Zeroes the utilization accumulators (e.g. between traffic
    /// windows).
    pub fn reset_pattern_usage(&self) {
        self.usage.reset();
    }

    /// Human-readable utilization table (see [`crate::usage`]): patterns
    /// by argmin share, dead patterns flagged.
    pub fn render_pattern_usage(&self) -> String {
        let classes: Vec<usize> = self.patterns.iter().map(|p| p.class).collect();
        render_usage(&self.usage.stats(), &classes)
    }

    /// Classifies every `hop`-strided window of a long streaming series,
    /// returning `(window start, predicted label)` pairs — the deployment
    /// shape for continuous monitoring (e.g. the §6.2 ICU feed, where the
    /// stream is scored window by window rather than pre-segmented).
    ///
    /// Windows shorter than `window` at the tail are skipped. `hop == 0`
    /// is clamped to 1.
    pub fn classify_stream(
        &self,
        stream: &[f64],
        window: usize,
        hop: usize,
    ) -> Vec<(usize, Label)> {
        let hop = hop.max(1);
        let mut out = Vec::new();
        if window == 0 || stream.len() < window {
            return out;
        }
        let mut start = 0;
        while start + window <= stream.len() {
            out.push((start, self.predict(&stream[start..start + window])));
            start += hop;
        }
        out
    }

    /// The learned representative patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Patterns belonging to one class.
    pub fn patterns_for_class(&self, class: Label) -> Vec<&Pattern> {
        self.patterns.iter().filter(|p| p.class == class).collect()
    }

    /// The per-class SAX configurations the model was trained with.
    pub fn sax_configs(&self) -> &BTreeMap<Label, SaxConfig> {
        &self.per_class_sax
    }

    /// Memoization-cache counters of the training run that produced this
    /// model (`CacheStats::default()` for models loaded from disk).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// Whether rotation-invariant classification is enabled.
    pub fn is_rotation_invariant(&self) -> bool {
        self.rotation_invariant
    }

    /// Whether the parameter search exhausted its [`crate::TrainBudget`]
    /// before completing — the model was fit with the best parameters
    /// found so far and may score below a full search. Survives
    /// save/load.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The SVM hyper-parameters type, re-exported for convenience.
    pub fn svm_params_type() -> SvmParams {
        SvmParams::default()
    }

    /// The model's wire-visible shape, for serving-side compatibility
    /// checks: a hot reload must not change the label vocabulary
    /// clients see mid-flight.
    pub fn schema(&self) -> ModelSchema {
        ModelSchema {
            classes: self.per_class_sax.keys().copied().collect(),
            patterns: self.patterns.len(),
            rotation_invariant: self.rotation_invariant,
        }
    }
}

/// Shape summary of a trained model as seen over the wire. The serving
/// reload gate compares the incumbent's schema against a candidate's
/// before swapping: labels are part of the `/classify` contract, so a
/// candidate with a different class set is an operator error (wrong
/// file), not a retrain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelSchema {
    /// Distinct class labels, ascending (the `/classify` vocabulary).
    pub classes: Vec<Label>,
    /// Representative patterns in the model (informational).
    pub patterns: usize,
    /// Whether rotation-invariant matching is enabled (informational).
    pub rotation_invariant: bool,
}

impl ModelSchema {
    /// Checks that `candidate` can replace a model with this schema
    /// without changing what clients observe. Only the class set is a
    /// hard gate; pattern count and rotation mode legitimately change
    /// across retrains.
    pub fn check_compat(&self, candidate: &ModelSchema) -> Result<(), SchemaMismatch> {
        if self.classes != candidate.classes {
            return Err(SchemaMismatch {
                incumbent_classes: self.classes.clone(),
                candidate_classes: candidate.classes.clone(),
            });
        }
        Ok(())
    }
}

/// Why a candidate model cannot replace the incumbent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaMismatch {
    /// Class labels the serving model answers with.
    pub incumbent_classes: Vec<Label>,
    /// Class labels the rejected candidate would answer with.
    pub candidate_classes: Vec<Label>,
}

impl std::fmt::Display for SchemaMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "class set changed: serving {:?}, candidate {:?}",
            self.incumbent_classes, self.candidate_classes
        )
    }
}

impl std::error::Error for SchemaMismatch {}

/// RPM through the shared [`rpm_ts::Classifier`] interface, so harnesses
/// can drive it and the baselines through one trait object.
impl rpm_ts::Classifier for RpmClassifier {
    fn predict(&self, series: &[f64]) -> Label {
        RpmClassifier::predict(self, series)
    }

    fn predict_batch_refs(&self, series: &[&[f64]]) -> Vec<Label> {
        RpmClassifier::predict_batch(self, series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// Two-class set: class 0 plants an up-chirp, class 1 a down-chirp,
    /// at random positions.
    fn two_class_dataset(n_per_class: usize, len: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new("synthetic", Vec::new(), Vec::new());
        for class in 0..2usize {
            for _ in 0..n_per_class {
                let mut s: Vec<f64> = (0..len).map(|_| 0.2 * (rng.gen::<f64>() - 0.5)).collect();
                let motif = 24;
                let at = rng.gen_range(0..len - motif);
                for i in 0..motif {
                    let t = i as f64 / motif as f64;
                    let v = (std::f64::consts::TAU * (1.0 + 2.0 * t) * t).sin();
                    s[at + i] += 3.0 * if class == 0 { v } else { -v };
                }
                d.push(s, class);
            }
        }
        d
    }

    fn fixed_config() -> RpmConfig {
        RpmConfig::fixed(SaxConfig::new(24, 4, 4))
    }

    #[test]
    fn trains_and_classifies_plantd_motifs() {
        let train = two_class_dataset(12, 128, 1);
        let test = two_class_dataset(10, 128, 2);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        assert!(!model.patterns().is_empty());
        let preds = model.predict_batch(&test.series);
        let err = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p != l)
            .count() as f64
            / preds.len() as f64;
        assert!(err <= 0.25, "error rate {err}");
    }

    #[test]
    fn patterns_carry_class_labels() {
        let train = two_class_dataset(12, 128, 3);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let classes: std::collections::BTreeSet<usize> =
            model.patterns().iter().map(|p| p.class).collect();
        assert!(!classes.is_empty());
        for &c in &classes {
            assert!(c < 2);
            assert_eq!(
                model.patterns_for_class(c).len(),
                model.patterns().iter().filter(|p| p.class == c).count()
            );
        }
    }

    #[test]
    fn transform_dimension_matches_pattern_count() {
        let train = two_class_dataset(12, 128, 4);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let f = model.transform(&train.series[0]);
        assert_eq!(f.len(), model.patterns().len());
    }

    #[test]
    fn empty_training_set_errors() {
        let d = Dataset::default();
        assert_eq!(
            RpmClassifier::train(&d, &fixed_config()).unwrap_err(),
            TrainError::EmptyTrainingSet
        );
    }

    #[test]
    fn single_class_errors() {
        let mut d = Dataset::default();
        d.push(vec![0.0; 64], 0);
        d.push(vec![1.0; 64], 0);
        assert_eq!(
            RpmClassifier::train(&d, &fixed_config()).unwrap_err(),
            TrainError::TooFewClasses
        );
    }

    #[test]
    fn oversized_window_gives_no_candidates() {
        let train = two_class_dataset(6, 40, 5);
        let cfg = RpmConfig::fixed(SaxConfig::new(64, 4, 4));
        assert_eq!(
            RpmClassifier::train(&train, &cfg).unwrap_err(),
            TrainError::NoCandidates
        );
    }

    #[test]
    fn per_class_fixed_configs_are_applied() {
        let train = two_class_dataset(12, 128, 6);
        let cfg = RpmConfig {
            param_search: ParamSearch::PerClassFixed(vec![
                SaxConfig::new(24, 4, 4),
                SaxConfig::new(32, 4, 5),
            ]),
            ..RpmConfig::default()
        };
        let model = RpmClassifier::train(&train, &cfg).unwrap();
        assert_eq!(model.sax_configs()[&0].window, 24);
        assert_eq!(model.sax_configs()[&1].window, 32);
    }

    #[test]
    fn rotation_invariant_flag_propagates() {
        let train = two_class_dataset(12, 128, 7);
        let cfg = RpmConfig {
            rotation_invariant: true,
            ..fixed_config()
        };
        let model = RpmClassifier::train(&train, &cfg).unwrap();
        assert!(model.is_rotation_invariant());
    }

    #[test]
    fn stream_classification_tracks_regime_changes() {
        let train = two_class_dataset(12, 128, 31);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        // A stream that is class 0 for its first half and class 1 after.
        let probe = two_class_dataset(1, 128, 32);
        let mut stream = probe.series[probe.labels.iter().position(|&l| l == 0).unwrap()].clone();
        stream.extend_from_slice(&probe.series[probe.labels.iter().position(|&l| l == 1).unwrap()]);
        let verdicts = model.classify_stream(&stream, 128, 64);
        assert_eq!(verdicts.len(), 3); // starts 0, 64, 128
        assert_eq!(verdicts[0], (0, 0));
        assert_eq!(verdicts[2], (128, 1));
    }

    #[test]
    fn stream_edge_cases() {
        let train = two_class_dataset(10, 128, 33);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        assert!(model.classify_stream(&[1.0; 10], 128, 1).is_empty());
        assert!(model.classify_stream(&[1.0; 200], 0, 1).is_empty());
        // hop 0 clamps to 1 and terminates.
        let v = model.classify_stream(&train.series[0], 128, 0);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn parallel_training_matches_serial() {
        let train = two_class_dataset(10, 128, 40);
        let test = two_class_dataset(6, 128, 41);
        let serial = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let parallel_cfg = RpmConfig {
            n_threads: 4,
            ..fixed_config()
        };
        let parallel = RpmClassifier::train(&train, &parallel_cfg).unwrap();
        assert_eq!(
            serial.predict_batch(&test.series),
            parallel.predict_batch(&test.series)
        );
        assert_eq!(serial.patterns().len(), parallel.patterns().len());
        let batched = parallel
            .predict_batch_with(&test.series, Parallelism::Threads(4))
            .unwrap();
        assert_eq!(batched, serial.predict_batch(&test.series));
    }

    #[test]
    fn borrowed_batches_match_owned_batches() {
        let train = two_class_dataset(10, 128, 44);
        let test = two_class_dataset(6, 128, 45);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let owned = model.predict_batch(&test.series);
        // The serving shape: slices borrowed from buffers owned elsewhere.
        let refs: Vec<&[f64]> = test.series.iter().map(Vec::as_slice).collect();
        assert_eq!(model.predict_batch(&refs), owned);
        assert_eq!(
            model
                .predict_batch_with(&refs, Parallelism::Threads(3))
                .unwrap(),
            owned
        );
        assert_eq!(
            model
                .predict_batch_with(&refs, Parallelism::Serial)
                .unwrap(),
            owned
        );
    }

    #[test]
    fn traced_batch_is_bit_identical_and_counts_the_kernel() {
        let train = two_class_dataset(10, 128, 46);
        let test = two_class_dataset(4, 128, 47);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let plain = model.predict_batch(&test.series);
        for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
            let counters = ScanCounters::new();
            let traced = model
                .predict_batch_traced(&test.series, parallelism, Some(&counters))
                .unwrap();
            assert_eq!(traced, plain, "{parallelism:?}");
            let stats = counters.snapshot();
            assert!(stats.searches > 0, "{parallelism:?}: {stats:?}");
            assert!(stats.windows >= stats.searches);
            // None delegates straight to predict_batch_with.
            assert_eq!(
                model
                    .predict_batch_traced(&test.series, parallelism, None)
                    .unwrap(),
                plain
            );
        }
    }

    #[test]
    fn training_builds_a_reference_profile() {
        let train = two_class_dataset(10, 128, 50);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let profile = model.reference_profile().expect("training always profiles");
        assert_eq!(profile.total_samples(), train.series.len() as u64);
        // The model predicts both classes on its own training set, so the
        // profile holds a sketch per class.
        assert_eq!(profile.class_labels(), vec![0, 1]);
    }

    #[test]
    fn observed_batch_matches_plain_labels_and_fills_samples() {
        let train = two_class_dataset(10, 128, 51);
        let test = two_class_dataset(4, 128, 52);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let plain = model.predict_batch(&test.series);
        for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
            let observed = model
                .predict_batch_observed(&test.series, parallelism, None)
                .unwrap();
            let labels: Vec<usize> = observed.iter().map(|(l, _)| *l).collect();
            assert_eq!(labels, plain, "{parallelism:?}");
            for ((label, sample), series) in observed.iter().zip(&test.series) {
                assert_eq!(sample.class, *label);
                assert_eq!(sample.len, series.len());
                assert!(sample.best_distance.is_finite() && sample.best_distance >= 0.0);
                assert!(sample.margin >= 0.0);
                assert!(sample.stddev > 0.0, "noisy series have spread");
                assert!(sample.z_extreme > 0.0);
            }
            // The winning distance is the row minimum.
            let row = model.transform(&test.series[0]);
            let expected = row.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(observed[0].1.best_distance, expected);
        }
        // Counters attach the same way as predict_batch_traced.
        let counters = ScanCounters::new();
        model
            .predict_batch_observed(&test.series, Parallelism::Serial, Some(&counters))
            .unwrap();
        assert!(counters.snapshot().searches > 0);
    }

    #[test]
    fn classifier_trait_dispatches_to_rpm() {
        let train = two_class_dataset(10, 128, 42);
        let model = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let as_trait: &dyn rpm_ts::Classifier = &model;
        let direct = model.predict_batch(&train.series);
        let via_trait = rpm_ts::Classifier::predict_batch(&as_trait, &train.series);
        assert_eq!(direct, via_trait);
        let refs: Vec<&[f64]> = train.series.iter().map(Vec::as_slice).collect();
        assert_eq!(direct, as_trait.predict_batch_refs(&refs));
    }

    #[test]
    fn training_is_deterministic() {
        let train = two_class_dataset(10, 128, 8);
        let m1 = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let m2 = RpmClassifier::train(&train, &fixed_config()).unwrap();
        let test = two_class_dataset(5, 128, 9);
        assert_eq!(
            m1.predict_batch(&test.series),
            m2.predict_batch(&test.series)
        );
        assert_eq!(m1.patterns().len(), m2.patterns().len());
    }
}
