//! Differential correctness suite for the closest-match kernels.
//!
//! The rolling-statistics kernel (`MatchPlan::best_match`, the default) must
//! agree with the naive per-window oracle (`best_match_naive`) on every
//! input: the winning position **exactly**, and the distance within `1e-9`
//! relative tolerance. Bit-equality is deliberately not required — the two
//! kernels sum the same per-element terms in different orders, so the last
//! few ulps may differ (see DESIGN.md, "Closest-match kernel").
//!
//! Case count is read from `PROPTEST_CASES` (default 256 — the PR-gate
//! budget); the nightly CI sweep runs with `PROPTEST_CASES=2048`.

use proptest::prelude::*;
use rpm::ts::{best_match, best_match_naive, prepare_pattern, MatchKernel, MatchPlan};

/// Relative tolerance for distance agreement between the two kernels.
const REL_TOL: f64 = 1e-9;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Assert the rolling kernel and the naive oracle agree on `(pattern, series)`.
fn assert_kernels_agree(pattern: &[f64], series: &[f64], early_abandon: bool) {
    let naive = best_match_naive(pattern, series, early_abandon);
    let rolling = best_match(pattern, series, early_abandon);
    match (naive, rolling) {
        (None, None) => {}
        (Some(n), Some(r)) => {
            assert_eq!(
                r.position, n.position,
                "argmin diverged: rolling pos {} (d={:.17e}) vs naive pos {} (d={:.17e})",
                r.position, r.distance, n.position, n.distance
            );
            let tol = REL_TOL * n.distance.abs().max(1.0);
            assert!(
                (r.distance - n.distance).abs() <= tol,
                "distance diverged at pos {}: rolling {:.17e} vs naive {:.17e} (tol {:.3e})",
                n.position,
                r.distance,
                n.distance,
                tol
            );
        }
        (n, r) => panic!("feasibility diverged: naive={n:?} rolling={r:?}"),
    }
}

/// Random-walk series generator (realistic autocorrelation).
fn random_walk(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, len).prop_map(|steps| {
        let mut acc = 0.0;
        steps
            .into_iter()
            .map(|s| {
                acc += s;
                acc
            })
            .collect()
    })
}

/// Coin-flip strategy (the vendored proptest shim has no `any::<bool>()`).
fn coin() -> impl Strategy<Value = bool> {
    (0u32..2).prop_map(|b| b == 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Plain random walks: the bread-and-butter case.
    #[test]
    fn random_walks_agree(
        pattern in random_walk(4..48),
        series in random_walk(48..256),
        early_abandon in coin(),
    ) {
        assert_kernels_agree(&pattern, &series, early_abandon);
    }

    /// Large-magnitude vertical offsets (±1e6) stress the rolling sums:
    /// variance is tiny relative to E[x²], which forces the kernel onto its
    /// exact two-pass fallback. Agreement must survive.
    #[test]
    fn large_offsets_agree(
        pattern in random_walk(4..32),
        series in random_walk(32..160),
        magnitude in 1.0e5f64..1.0e6,
        negative in coin(),
        early_abandon in coin(),
    ) {
        let offset = if negative { -magnitude } else { magnitude };
        let shifted: Vec<f64> = series.iter().map(|x| x + offset).collect();
        assert_kernels_agree(&pattern, &shifted, early_abandon);
        // Offset pattern too: z-normalization must cancel it on both sides.
        let shifted_pat: Vec<f64> = pattern.iter().map(|x| x - offset).collect();
        assert_kernels_agree(&shifted_pat, &shifted, early_abandon);
    }

    /// A constant plateau spliced into the series produces σ = 0 windows
    /// mid-scan; both kernels must apply the all-zeros convention and agree
    /// on position and distance.
    #[test]
    fn constant_plateau_in_series_agrees(
        pattern in random_walk(4..24),
        series in random_walk(64..160),
        start in 0usize..64,
        run in 8usize..48,
        level in -50.0f64..50.0,
        early_abandon in coin(),
    ) {
        let mut series = series;
        let begin = start.min(series.len());
        let end = (start + run).min(series.len());
        for v in &mut series[begin..end] {
            *v = level;
        }
        assert_kernels_agree(&pattern, &series, early_abandon);
    }

    /// A constant (degenerate) pattern: every window is equidistant modulo
    /// window shape, and the plan must fall back to the naive scan so the
    /// positional tie-break is byte-for-byte identical.
    #[test]
    fn constant_pattern_agrees(
        len in 3usize..24,
        level in -100.0f64..100.0,
        series in random_walk(32..128),
        early_abandon in coin(),
    ) {
        let pattern = vec![level; len];
        let naive = best_match_naive(&pattern, &series, early_abandon).unwrap();
        let rolling = best_match(&pattern, &series, early_abandon).unwrap();
        // Degenerate patterns delegate to the naive scan: exact equality.
        prop_assert_eq!(rolling.position, naive.position);
        prop_assert_eq!(rolling.distance.to_bits(), naive.distance.to_bits());
    }

    /// Near-constant series: a plateau with jitter well above the σ = 0
    /// threshold (amplitudes in [1e-3, 10]) so both kernels must treat the
    /// windows as genuinely variable and still agree at tolerance.
    #[test]
    fn near_constant_series_agrees(
        pattern in random_walk(4..16),
        jitter in proptest::collection::vec(-1.0f64..1.0, 48..128),
        amplitude in 1.0e-3f64..10.0,
        level in -1.0e4f64..1.0e4,
        early_abandon in coin(),
    ) {
        let series: Vec<f64> = jitter.iter().map(|j| level + amplitude * j).collect();
        assert_kernels_agree(&pattern, &series, early_abandon);
    }

    /// Series length == pattern length: exactly one candidate window, which
    /// exercises the rolling-statistics warm-up path with no slide at all.
    #[test]
    fn single_window_agrees(
        series in random_walk(4..64),
        seed in random_walk(4..64),
        early_abandon in coin(),
    ) {
        let n = series.len().min(seed.len());
        assert_kernels_agree(&seed[..n], &series[..n], early_abandon);
        // Pattern longer than the series: both must report no match.
        if seed.len() > series.len() {
            prop_assert!(best_match(&seed, &series, early_abandon).is_none());
            prop_assert!(best_match_naive(&seed, &series, early_abandon).is_none());
        }
    }

    /// Reusing one `MatchPlan` across many series is bit-identical to
    /// preparing a fresh plan per call — plan state is never mutated by a
    /// scan.
    #[test]
    fn plan_reuse_is_bitwise_deterministic(
        pattern in random_walk(4..32),
        series_a in random_walk(32..128),
        series_b in random_walk(32..128),
        early_abandon in coin(),
    ) {
        let shared = prepare_pattern(&pattern);
        for series in [&series_a, &series_b] {
            let reused = shared.best_match(series, early_abandon).unwrap();
            let fresh = prepare_pattern(&pattern).best_match(series, early_abandon).unwrap();
            prop_assert_eq!(reused.position, fresh.position);
            prop_assert_eq!(reused.distance.to_bits(), fresh.distance.to_bits());
            // And a second scan with the same plan repeats exactly.
            let again = shared.best_match(series, early_abandon).unwrap();
            prop_assert_eq!(again.position, reused.position);
            prop_assert_eq!(again.distance.to_bits(), reused.distance.to_bits());
        }
    }

    /// A plan pinned to the naive kernel is byte-for-byte the naive oracle.
    #[test]
    fn naive_plan_is_the_oracle(
        pattern in random_walk(4..32),
        series in random_walk(32..128),
        early_abandon in coin(),
    ) {
        let plan = MatchPlan::with_kernel(&pattern, MatchKernel::Naive);
        let via_plan = plan.best_match(&series, early_abandon).unwrap();
        let oracle = best_match_naive(&pattern, &series, early_abandon).unwrap();
        prop_assert_eq!(via_plan.position, oracle.position);
        prop_assert_eq!(via_plan.distance.to_bits(), oracle.distance.to_bits());
    }

    /// Early abandoning is an optimization, not a semantics change: with and
    /// without it the rolling kernel returns the same position and a
    /// tolerance-equal distance.
    #[test]
    fn early_abandon_preserves_result(
        pattern in random_walk(4..32),
        series in random_walk(32..160),
    ) {
        let eager = best_match(&pattern, &series, true).unwrap();
        let full = best_match(&pattern, &series, false).unwrap();
        prop_assert_eq!(eager.position, full.position);
        let tol = REL_TOL * full.distance.abs().max(1.0);
        prop_assert!((eager.distance - full.distance).abs() <= tol);
    }
}

// --- Batched pattern-set cascade -------------------------------------
//
// The batched kernel scans all K patterns of a set through the
// lower-bound cascade in one pass per series. Its contract is stronger
// than the rolling/naive tolerance above: because every cascade tier is
// admissible (proved in `lb_admissibility.rs`) and the exact tier shares
// the rolling kernel's summation code verbatim, the batched result must
// be **bit-identical** to the per-pattern rolling scan — position and
// distance bits — for every pattern in the set.

/// Assert the batched cascade agrees with both per-pattern oracles for
/// every pattern in `patterns`: bit-identical to rolling, and exact
/// position + `REL_TOL` distance vs naive.
fn assert_batched_agrees(patterns: &[Vec<f64>], series: &[f64], early_abandon: bool) {
    let plans: Vec<MatchPlan> = patterns
        .iter()
        .map(|p| MatchPlan::with_kernel(p, MatchKernel::Batched))
        .collect();
    let set = rpm::ts::BatchedMatch::new(&plans);
    let results = set.match_all(series, early_abandon, None);
    assert_eq!(results.len(), patterns.len());
    for (k, (pattern, got)) in patterns.iter().zip(&results).enumerate() {
        let rolling = best_match(pattern, series, early_abandon);
        match (rolling, got) {
            (None, None) => {}
            (Some(r), Some(b)) => {
                assert_eq!(
                    b.position, r.position,
                    "pattern {k}: batched pos {} (d={:.17e}) vs rolling pos {} (d={:.17e})",
                    b.position, b.distance, r.position, r.distance
                );
                assert_eq!(
                    b.distance.to_bits(),
                    r.distance.to_bits(),
                    "pattern {k}: batched distance {:.17e} not bit-identical to rolling {:.17e}",
                    b.distance,
                    r.distance
                );
                let naive = best_match_naive(pattern, series, early_abandon).unwrap();
                assert_eq!(
                    b.position, naive.position,
                    "pattern {k}: naive argmin diverged"
                );
                let tol = REL_TOL * naive.distance.abs().max(1.0);
                assert!(
                    (b.distance - naive.distance).abs() <= tol,
                    "pattern {k}: batched {:.17e} vs naive {:.17e} (tol {:.3e})",
                    b.distance,
                    naive.distance,
                    tol
                );
            }
            (r, b) => panic!("pattern {k}: feasibility diverged: rolling={r:?} batched={b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Multi-pattern sets over random walks: the core batched contract.
    #[test]
    fn batched_multi_pattern_set_agrees(
        patterns in proptest::collection::vec(random_walk(4..48), 2..6),
        series in random_walk(48..256),
        early_abandon in coin(),
    ) {
        assert_batched_agrees(&patterns, &series, early_abandon);
    }

    /// A single-pattern set (K = 1) must equal the rolling scan exactly —
    /// the degenerate batch carries no cross-pattern state.
    #[test]
    fn batched_single_pattern_agrees(
        pattern in random_walk(4..48),
        series in random_walk(48..192),
        early_abandon in coin(),
    ) {
        assert_batched_agrees(std::slice::from_ref(&pattern), &series, early_abandon);
    }

    /// Duplicate patterns in one set: every copy must return the same
    /// bits, and all of them the rolling answer — per-pattern best-so-far
    /// state must not leak between set members.
    #[test]
    fn batched_duplicate_patterns_agree(
        pattern in random_walk(4..32),
        copies in 2usize..6,
        series in random_walk(32..160),
        early_abandon in coin(),
    ) {
        let patterns = vec![pattern; copies];
        assert_batched_agrees(&patterns, &series, early_abandon);
    }

    /// K ≫ windows: many patterns nearly as long as the series, so each
    /// scan has only a handful of candidate positions (including the
    /// single-window warm-up path) while the set is wide.
    #[test]
    fn batched_many_patterns_few_windows(
        series in random_walk(24..48),
        seeds in proptest::collection::vec(random_walk(20..48), 8..20),
        early_abandon in coin(),
    ) {
        let patterns: Vec<Vec<f64>> = seeds
            .into_iter()
            .map(|s| {
                let n = s.len().min(series.len());
                s[..n].to_vec()
            })
            .collect();
        assert_batched_agrees(&patterns, &series, early_abandon);
    }

    /// Oversized patterns in the set report no match, without disturbing
    /// their feasible neighbours.
    #[test]
    fn batched_oversized_patterns_are_infeasible(
        series in random_walk(16..48),
        feasible in random_walk(4..16),
        extra in random_walk(1..32),
        early_abandon in coin(),
    ) {
        let mut oversized = series.clone();
        oversized.extend_from_slice(&extra);
        assert_batched_agrees(&[feasible, oversized], &series, early_abandon);
    }

    /// The adversarial corpus, batched: constant plateaus (σ = 0 windows
    /// mid-scan) and ±1e5..1e6 vertical offsets in one series, scanned by
    /// a mixed-length pattern set.
    #[test]
    fn batched_adversarial_series_agrees(
        patterns in proptest::collection::vec(random_walk(4..32), 2..5),
        series in random_walk(64..192),
        start in 0usize..64,
        run in 8usize..48,
        level in -50.0f64..50.0,
        magnitude in 1.0e5f64..1.0e6,
        negative in coin(),
        early_abandon in coin(),
    ) {
        let mut series = series;
        let begin = start.min(series.len());
        let end = (start + run).min(series.len());
        for v in &mut series[begin..end] {
            *v = level;
        }
        let offset = if negative { -magnitude } else { magnitude };
        let shifted: Vec<f64> = series.iter().map(|x| x + offset).collect();
        assert_batched_agrees(&patterns, &series, early_abandon);
        assert_batched_agrees(&patterns, &shifted, early_abandon);
    }

    /// Constant (degenerate) patterns inside a batched set take the naive
    /// fallback — byte-for-byte the naive oracle — while their variable
    /// neighbours stay bit-identical to rolling.
    #[test]
    fn batched_degenerate_members_take_naive_fallback(
        variable in random_walk(4..24),
        len in 3usize..24,
        level in -100.0f64..100.0,
        series in random_walk(32..128),
        early_abandon in coin(),
    ) {
        let constant = vec![level; len];
        let plans = vec![
            MatchPlan::with_kernel(&variable, MatchKernel::Batched),
            MatchPlan::with_kernel(&constant, MatchKernel::Batched),
        ];
        let set = rpm::ts::BatchedMatch::new(&plans);
        let results = set.match_all(&series, early_abandon, None);
        let var_rolling = best_match(&variable, &series, early_abandon).unwrap();
        let var_batched = results[0].unwrap();
        prop_assert_eq!(var_batched.position, var_rolling.position);
        prop_assert_eq!(var_batched.distance.to_bits(), var_rolling.distance.to_bits());
        let const_naive = best_match_naive(&constant, &series, early_abandon).unwrap();
        let const_batched = results[1].unwrap();
        prop_assert_eq!(const_batched.position, const_naive.position);
        prop_assert_eq!(const_batched.distance.to_bits(), const_naive.distance.to_bits());
    }
}
