//! Parallel-training acceptance tests: training with `n_threads >= 4`
//! must produce *bit-identical* models to serial training — the engine
//! merges worker results by index and every reduction happens in the
//! serial order (DESIGN.md §5). Plus property tests of the validated
//! config builder.

use proptest::prelude::*;
use rpm::prelude::*;
use rpm_data::{generate, registry::spec_by_name};

/// Full grid-search training on CBF: 4 threads vs serial, predictions
/// and learned patterns must match exactly.
#[test]
fn parallel_grid_training_matches_serial_on_cbf() {
    let spec = spec_by_name("CBF").unwrap();
    let mut spec = spec;
    spec.train = 18;
    spec.test = 24;
    let (train, test) = generate(&spec, 2016);
    let search = ParamSearch::Grid {
        windows: vec![16, 24, 32],
        paas: vec![4],
        alphas: vec![3, 4],
        per_class: false,
    };
    let serial_cfg = RpmConfig {
        param_search: search.clone(),
        n_validation_splits: 2,
        n_threads: 1,
        ..RpmConfig::default()
    };
    let parallel_cfg = RpmConfig {
        n_threads: 4,
        ..serial_cfg.clone()
    };

    let serial = RpmClassifier::train(&train, &serial_cfg).unwrap();
    let parallel = RpmClassifier::train(&train, &parallel_cfg).unwrap();

    assert_eq!(
        serial.predict_batch(&test.series),
        parallel.predict_batch(&test.series),
        "parallel grid training must be bit-identical to serial"
    );
    assert_eq!(serial.patterns().len(), parallel.patterns().len());
    for (a, b) in serial.patterns().iter().zip(parallel.patterns()) {
        assert_eq!(a.class, b.class);
        assert_eq!(a.values, b.values);
    }
}

/// DIRECT per-class training on SyntheticControl (6 classes): 4 threads
/// vs serial, identical predictions.
#[test]
fn parallel_direct_training_matches_serial_on_synthetic_control() {
    let mut spec = spec_by_name("SyntheticControl").unwrap();
    spec.train = 18; // 3 per class
    spec.test = 24;
    let (train, test) = generate(&spec, 2016);
    let serial_cfg = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 4,
            per_class: true,
        },
        n_validation_splits: 1,
        n_threads: 1,
        ..RpmConfig::default()
    };
    let parallel_cfg = RpmConfig {
        n_threads: 4,
        ..serial_cfg.clone()
    };

    let serial = RpmClassifier::train(&train, &serial_cfg).unwrap();
    let parallel = RpmClassifier::train(&train, &parallel_cfg).unwrap();

    assert_eq!(
        serial.predict_batch(&test.series),
        parallel.predict_batch(&test.series),
        "parallel DIRECT training must be bit-identical to serial"
    );
}

/// The quickstart builder from the issue: fluent, validated.
#[test]
fn builder_quickstart_round_trip() {
    let config = RpmConfig::builder().gamma(0.2).threads(8).build().unwrap();
    assert_eq!(config.gamma, 0.2);
    assert_eq!(config.n_threads, 8);

    let err = RpmConfig::builder().gamma(1.5).build().unwrap_err();
    assert_eq!(err, ConfigError::GammaOutOfRange(1.5));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `build()` accepts exactly the documented γ range `(0, 1]`.
    #[test]
    fn builder_validates_gamma(gamma in -1.0f64..2.0) {
        let r = RpmConfig::builder().gamma(gamma).build();
        if gamma > 0.0 && gamma <= 1.0 {
            prop_assert!(r.is_ok(), "gamma {gamma} should be accepted");
            prop_assert_eq!(r.unwrap().gamma, gamma);
        } else {
            prop_assert_eq!(r.unwrap_err(), ConfigError::GammaOutOfRange(gamma));
        }
    }

    /// `build()` accepts exactly the documented τ percentile range [0, 100].
    #[test]
    fn builder_validates_tau(tau in -50.0f64..150.0) {
        let r = RpmConfig::builder().tau_percentile(tau).build();
        if (0.0..=100.0).contains(&tau) {
            prop_assert!(r.is_ok(), "tau {tau} should be accepted");
        } else {
            prop_assert_eq!(r.unwrap_err(), ConfigError::TauPercentileOutOfRange(tau));
        }
    }

    /// Fixed SAX parameters are validated against the documented ranges;
    /// a valid triple always builds to a `Fixed` search with those values.
    #[test]
    fn builder_validates_sax(w in 0usize..64, p in 0usize..16, a in 0usize..26) {
        let r = RpmConfig::builder().sax(w, p, a).build();
        match r {
            Ok(cfg) => {
                prop_assert!(w > 0 && p > 0 && (2..=20).contains(&a));
                match cfg.param_search {
                    ParamSearch::Fixed(s) => {
                        prop_assert_eq!(s.window, w);
                        prop_assert_eq!(s.paa_size, p);
                        prop_assert_eq!(s.alphabet, a);
                    }
                    other => prop_assert!(false, "expected Fixed, got {:?}", other),
                }
            }
            Err(ConfigError::ZeroWindow) => prop_assert_eq!(w, 0),
            Err(ConfigError::ZeroPaa) => prop_assert_eq!(p, 0),
            Err(ConfigError::AlphabetOutOfRange(bad)) => {
                prop_assert_eq!(bad, a);
                prop_assert!(!(2..=20).contains(&a));
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    /// Any thread count is legal and is passed through verbatim
    /// (0 = auto-detect, resolved at engine construction, not here).
    #[test]
    fn builder_accepts_any_thread_count(n in 0usize..256) {
        let cfg = RpmConfig::builder().threads(n).build().unwrap();
        prop_assert_eq!(cfg.n_threads, n);
    }
}
