//! Robustness acceptance tests: injected faults at every site must surface
//! as typed errors (never a crash), an interrupted parameter search must
//! resume from its checkpoint to a bit-identical model, and an exhausted
//! training budget must degrade gracefully instead of erroring.
//!
//! The fault plan is process-global, so every test serializes on [`gate`]
//! and disarms before returning.

use rpm::core::{ParamSearch, RpmClassifier, RpmConfig, TrainBudget, TrainError};
use rpm::data::registry::spec_by_name;
use rpm::data::{generate, ucr::read_ucr};
use rpm::sax::SaxConfig;
use rpm::ts::Dataset;
use std::sync::{Mutex, MutexGuard};

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms one `site:kind:prob:seed` spec (the `RPM_FAULT` syntax).
fn arm(spec: &str) {
    rpm::obs::fault::install(rpm::obs::fault::parse(spec).expect("valid fault spec"));
}

fn disarm() {
    rpm::obs::fault::clear();
}

fn small_cbf() -> Dataset {
    let mut spec = spec_by_name("CBF").expect("CBF registered");
    spec.train = 12;
    spec.test = 4;
    generate(&spec, 2016).0
}

/// A serial, deterministic DIRECT-search config (the checkpoint/budget
/// paths only engage when a search runs).
fn search_config() -> RpmConfig {
    RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 6,
            per_class: false,
        },
        n_validation_splits: 2,
        n_threads: 1,
        ..RpmConfig::default()
    }
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rpm_resilience_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let unique = format!("{name}-{}", std::process::id());
    dir.join(unique)
}

fn model_bytes(model: &RpmClassifier) -> Vec<u8> {
    let mut buf = Vec::new();
    model.save(&mut buf).expect("save to memory");
    buf
}

#[test]
fn interrupted_search_resumes_from_checkpoint_bit_identically() {
    let _g = gate();
    disarm();
    let train = small_cbf();
    let checkpoint = temp_path("resume.ckpt");
    std::fs::remove_file(&checkpoint).ok();

    // Ground truth: one uninterrupted run, no checkpoint involved.
    let baseline = RpmClassifier::train(&train, &search_config()).expect("baseline train");
    let baseline_bytes = model_bytes(&baseline);

    // Crash mid-search: every parameter evaluation panics with p=0.5
    // (seeded, so the crash point is reproducible). The panic is caught
    // and surfaced as a typed engine error.
    let config = RpmConfig {
        checkpoint: Some(checkpoint.clone()),
        ..search_config()
    };
    arm("params.eval:panic:0.5:3");
    let crashed = RpmClassifier::train(&train, &config);
    disarm();
    match crashed {
        Err(TrainError::Engine(_)) => {}
        other => panic!("expected an injected mid-search crash, got {other:?}"),
    }
    let ckpt_text = std::fs::read_to_string(&checkpoint).expect("checkpoint written");
    assert!(
        ckpt_text.lines().any(|l| l.starts_with("eval ")),
        "crashed run persisted completed evaluations:\n{ckpt_text}"
    );

    // Resume: completed cells come back from the checkpoint, the rest
    // re-run, and the final model is byte-for-byte the uninterrupted one.
    let resumed = RpmClassifier::train(&train, &config).expect("resumed train");
    assert_eq!(model_bytes(&resumed), baseline_bytes);

    // A second resume (everything cached) also matches.
    let again = RpmClassifier::train(&train, &config).expect("fully-cached train");
    assert_eq!(model_bytes(&again), baseline_bytes);
    std::fs::remove_file(&checkpoint).ok();
}

#[test]
fn exhausted_budget_degrades_instead_of_erroring() {
    let _g = gate();
    disarm();
    let train = small_cbf();

    let full = RpmClassifier::train(&train, &search_config()).expect("unbudgeted train");
    assert!(!full.is_degraded());

    let config = RpmConfig {
        budget: TrainBudget {
            wall_clock: None,
            max_evals: Some(1),
        },
        ..search_config()
    };
    let model = RpmClassifier::train(&train, &config).expect("budgeted train");
    assert!(model.is_degraded(), "1-eval budget must mark the model");

    // The flag survives the v2 save/load round trip.
    let loaded = RpmClassifier::load(model_bytes(&model).as_slice()).expect("reload");
    assert!(loaded.is_degraded());
}

#[test]
fn zero_wall_clock_budget_still_returns_a_model() {
    let _g = gate();
    disarm();
    let train = small_cbf();
    let config = RpmConfig {
        budget: TrainBudget {
            wall_clock: Some(std::time::Duration::ZERO),
            max_evals: None,
        },
        ..search_config()
    };
    let model = RpmClassifier::train(&train, &config).expect("deadline-zero train");
    assert!(model.is_degraded());
}

#[test]
fn engine_job_faults_surface_as_typed_errors() {
    let _g = gate();
    disarm();
    let train = small_cbf();
    for threads in [1usize, 4] {
        arm("engine.job:panic:1:0");
        let err = RpmClassifier::train(
            &train,
            &RpmConfig {
                n_threads: threads,
                ..RpmConfig::fixed(SaxConfig::new(24, 4, 4))
            },
        )
        .expect_err("armed engine fault must fail training");
        disarm();
        assert!(
            matches!(err, TrainError::Engine(_)),
            "threads={threads}: {err}"
        );
    }
}

#[test]
fn persistence_faults_surface_as_io_errors() {
    let _g = gate();
    disarm();
    let train = small_cbf();
    let model = RpmClassifier::train(&train, &RpmConfig::fixed(SaxConfig::new(24, 4, 4)))
        .expect("train without faults");
    let bytes = model_bytes(&model);

    arm("persist.save:io:1:0");
    let err = model.save(Vec::new()).expect_err("injected save fault");
    assert_eq!(err.kind(), std::io::ErrorKind::Other);
    disarm();

    arm("persist.load:io:1:0");
    let err = RpmClassifier::load(bytes.as_slice()).expect_err("injected load fault");
    assert!(matches!(err, rpm::core::PersistError::Io(_)), "{err}");
    disarm();

    // Disarmed, both paths work again.
    assert!(model.save(Vec::new()).is_ok());
    assert!(RpmClassifier::load(bytes.as_slice()).is_ok());
}

#[test]
fn checkpoint_faults_surface_as_typed_errors_or_degrade() {
    let _g = gate();
    disarm();
    let train = small_cbf();
    let checkpoint = temp_path("faulty.ckpt");
    std::fs::remove_file(&checkpoint).ok();
    let config = RpmConfig {
        checkpoint: Some(checkpoint.clone()),
        ..search_config()
    };

    // A checkpoint that cannot be opened is a typed training error.
    arm("checkpoint.load:io:1:0");
    let err = RpmClassifier::train(&train, &config).expect_err("injected checkpoint-load fault");
    assert!(matches!(err, TrainError::Checkpoint(_)), "{err}");
    disarm();

    // Checkpoint *write* failures must not fail training — persistence of
    // progress is best-effort (a warning), the search itself continues.
    arm("checkpoint.write:io:1:0");
    let model = RpmClassifier::train(&train, &config);
    disarm();
    let model = model.expect("write faults degrade to a warning");
    assert!(!model.patterns().is_empty());
    std::fs::remove_file(&checkpoint).ok();
}

#[test]
fn data_load_faults_surface_as_io_errors() {
    let _g = gate();
    disarm();
    arm("data.load:io:1:0");
    let err = read_ucr("1,0.5,1.5\n2,3.0,4.0\n".as_bytes(), "t").expect_err("injected data fault");
    assert_eq!(err.kind(), std::io::ErrorKind::Other);
    let err = rpm::data::read_ucr_lenient("1,0.5,1.5\n".as_bytes(), "t")
        .expect_err("lenient reader also honors the site");
    assert_eq!(err.kind(), std::io::ErrorKind::Other);
    disarm();
    assert!(read_ucr("1,0.5,1.5\n2,3.0,4.0\n".as_bytes(), "t").is_ok());
}

#[test]
fn delay_faults_only_slow_things_down() {
    let _g = gate();
    disarm();
    let train = small_cbf();
    arm("engine.job:delay10:1:0");
    let model = RpmClassifier::train(&train, &RpmConfig::fixed(SaxConfig::new(24, 4, 4)));
    disarm();
    assert!(model.is_ok(), "delays never change results");
}
