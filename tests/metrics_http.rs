//! End-to-end test of the `/metrics` endpoint: start the std-only HTTP
//! server on an ephemeral port, scrape it with a raw [`TcpStream`], and
//! parse the Prometheus text exposition it returns.
//!
//! The global metrics registry and obs level are process-wide, so all
//! assertions live in one `#[test]` — state set up early (counters,
//! histogram observations) is visible to every later scrape.

use rpm::obs::{ObsConfig, ObsLevel};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Minimal HTTP/1.0 GET returning `(status_line, headers, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_string(), headers.to_string(), body.to_string())
}

/// Parses `value` from a `name{labels} value` or `name value` line.
fn sample_value(line: &str) -> f64 {
    line.rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("numeric sample")
}

#[test]
fn metrics_endpoint_serves_parseable_exposition() {
    ObsConfig {
        level: ObsLevel::Summary,
        ..ObsConfig::default()
    }
    .install();

    // Populate the registry through the public probes (all gated on the
    // level we just installed).
    let m = rpm::obs::metrics();
    m.engine_jobs.add(42);
    for v in [100u64, 2_000, 2_000, 65_000] {
        m.predict_latency.observe(v);
    }

    let mut server = rpm::obs::serve("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();

    // --- /healthz ---------------------------------------------------
    // JSON health payload; no drift monitor is installed in this
    // process, so the verdict is `unavailable` and status stays `ok`.
    let (status, _, body) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "healthz status: {status}");
    assert!(body.contains("\"status\":\"ok\""), "healthz body: {body}");
    assert!(
        body.contains("\"drift\":\"unavailable\""),
        "healthz body: {body}"
    );
    assert!(body.contains("\"uptime_secs\":"), "healthz body: {body}");

    // --- unknown route ----------------------------------------------
    let (status, _, _) = http_get(addr, "/nope");
    assert!(status.contains("404"), "unknown route: {status}");

    // --- /metrics ---------------------------------------------------
    let (status, headers, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "metrics status: {status}");
    assert!(
        headers.to_ascii_lowercase().contains("text/plain"),
        "content type: {headers}"
    );

    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "empty exposition");

    // Counter family: TYPE line and a _total sample >= what we added.
    assert!(
        lines.contains(&"# TYPE rpm_engine_jobs_total counter"),
        "missing counter TYPE line in:\n{body}"
    );
    let jobs = lines
        .iter()
        .find(|l| l.starts_with("rpm_engine_jobs_total "))
        .expect("engine jobs sample");
    assert!(sample_value(jobs) >= 42.0, "{jobs}");

    // Histogram family: _bucket series must be cumulative and monotone,
    // end at +Inf == _count, and carry a _sum.
    assert!(
        lines.contains(&"# TYPE rpm_predict_latency_ns histogram"),
        "missing histogram TYPE line in:\n{body}"
    );
    let buckets: Vec<f64> = lines
        .iter()
        .filter(|l| l.starts_with("rpm_predict_latency_ns_bucket{"))
        .map(|l| sample_value(l))
        .collect();
    assert!(buckets.len() >= 2, "expected buckets: {body}");
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "buckets not cumulative: {buckets:?}"
    );
    let inf = lines
        .iter()
        .find(|l| l.contains("rpm_predict_latency_ns_bucket{le=\"+Inf\"}"))
        .expect("+Inf bucket");
    let count = lines
        .iter()
        .find(|l| l.starts_with("rpm_predict_latency_ns_count "))
        .expect("_count sample");
    assert_eq!(sample_value(inf), sample_value(count));
    assert!(sample_value(count) >= 4.0, "{count}");
    let sum = lines
        .iter()
        .find(|l| l.starts_with("rpm_predict_latency_ns_sum "))
        .expect("_sum sample");
    assert!(sample_value(sum) >= 69_100.0, "{sum}");

    // Every non-comment line is `name[{labels}] value` with a finite value.
    for l in lines.iter().filter(|l| !l.starts_with('#')) {
        let v = sample_value(l);
        assert!(v.is_finite() && v >= 0.0, "bad sample line: {l}");
    }

    // A second scrape must reflect updates (live registry, not a cache).
    m.engine_jobs.add(1);
    let (_, _, body2) = http_get(addr, "/metrics");
    let jobs2 = body2
        .lines()
        .find(|l| l.starts_with("rpm_engine_jobs_total "))
        .expect("engine jobs sample after update");
    assert!(sample_value(jobs2) >= 43.0, "{jobs2}");

    server.shutdown();
    // After shutdown the port is released and can be rebound.
    assert!(std::net::TcpListener::bind(addr).is_ok(), "port not freed");
}
