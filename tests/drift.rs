//! End-to-end acceptance for online drift detection: a model trained on
//! clean CBF data and served over HTTP must flag amplitude/offset-shifted
//! traffic on `/debug/drift` (and degrade `/healthz`) within one epoch
//! window, while a clean replay of the training distribution stays `ok`,
//! and a model persisted without a reference profile must serve with the
//! drift verdict `unavailable` rather than guessing.
//!
//! The drift monitor and model fingerprint are process-global, so every
//! test here serializes on [`gate`].

use rpm::core::{RpmClassifier, RpmConfig};
use rpm::data::generate;
use rpm::data::registry::spec_by_name;
use rpm::obs::DriftConfig;
use rpm::sax::SaxConfig;
use rpm::serve::{load_verified, ServeConfig, Server};
use rpm::ts::Dataset;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn cbf() -> (Dataset, Dataset) {
    let mut spec = spec_by_name("CBF").expect("CBF registered");
    spec.train = 12;
    spec.test = 8;
    generate(&spec, 2016)
}

fn trained() -> (Arc<RpmClassifier>, Dataset, Dataset) {
    let (train, test) = cbf();
    let config = RpmConfig::fixed(SaxConfig::new(32, 4, 4));
    let model = RpmClassifier::train(&train, &config).expect("train CBF");
    (Arc::new(model), train, test)
}

/// Thresholds scaled down so a handful of requests clears warming and a
/// gross shift pages; the window shape stays at the defaults.
fn drift_config() -> DriftConfig {
    DriftConfig {
        min_samples: 5,
        warn: 0.05,
        page: 0.2,
        ..DriftConfig::default()
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        drift: drift_config(),
        ..ServeConfig::default()
    }
}

fn post(addr: std::net::SocketAddr, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "POST /classify HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn jsonl_body(series: &[f64]) -> String {
    let rendered: Vec<String> = series.iter().map(|v| format!("{v}")).collect();
    format!("[{}]\n", rendered.join(","))
}

/// Pulls a numeric field out of the flat drift JSON.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn clean_replay_stays_ok_while_shifted_traffic_pages() {
    let _gate = gate();
    let (model, train, test) = trained();

    // Phase 1: replay the training distribution — the serve transform is
    // bit-identical to training, so the live sketches match the
    // reference and every PSI stays under the warn threshold.
    let mut server = Server::start(Arc::clone(&model), &serve_config()).unwrap();
    let addr = server.local_addr();
    for series in &train.series {
        let r = post(addr, &jsonl_body(series));
        assert!(r.starts_with("HTTP/1.0 200"), "{r}");
    }
    let clean = get(addr, "/debug/drift");
    assert!(
        clean.contains("\"status\":\"ok\""),
        "clean replay drifted: {clean}"
    );
    let health = get(addr, "/healthz");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    server.shutdown();

    // Phase 2: fresh window, amplitude-doubled + mean-offset traffic.
    // Every request lands in the current epoch, so the verdict flips
    // within one epoch window — no waiting on wall-clock rotation.
    let mut server = Server::start(Arc::clone(&model), &serve_config()).unwrap();
    let addr = server.local_addr();
    for series in &test.series {
        let shifted: Vec<f64> = series.iter().map(|v| v * 2.0 + 5.0).collect();
        let r = post(addr, &jsonl_body(&shifted));
        assert!(r.starts_with("HTTP/1.0 200"), "{r}");
    }
    let drifted = get(addr, "/debug/drift");
    assert!(
        drifted.contains("\"status\":\"page\""),
        "shifted traffic did not page: {drifted}"
    );
    // At least one metric's PSI clears the page threshold by inspection,
    // not just via the verdict string.
    let worst = drifted
        .split("\"psi\":")
        .skip(1)
        .filter_map(|s| json_number(&format!("\"psi\":{s}"), "psi"))
        .fold(0.0, f64::max);
    assert!(worst > 0.2, "max psi {worst}: {drifted}");

    // Degraded health payload, liveness intact (HTTP 200).
    let health = get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.0 200"), "{health}");
    assert!(
        health.contains("\"status\":\"degraded\"") && health.contains("\"drift\":\"page\""),
        "{health}"
    );

    // The drift gauges ride the same scrape endpoint.
    let metrics = get(addr, "/metrics");
    assert!(metrics.contains("rpm_drift_status 4"), "{metrics}");
    assert!(
        metrics.contains("rpm_drift_psi{metric=\"mean_abs\"}"),
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn persisted_profile_survives_the_serve_loader() {
    let _gate = gate();
    let (model, train, _) = trained();
    let mut bytes = Vec::new();
    model.save(&mut bytes).unwrap();

    let (loaded, report) = load_verified(&bytes, false).unwrap();
    assert_eq!(report.profile_samples, train.series.len() as u64);
    assert_eq!(report.fingerprint.len(), 8);
    assert_eq!(loaded.reference_profile(), model.reference_profile());

    // The fingerprint set at load time (the CLI path) surfaces on
    // /healthz next to the drift verdict.
    rpm::obs::drift::set_model_fingerprint(Some(report.fingerprint.clone()));
    let mut server = Server::start(Arc::new(loaded), &serve_config()).unwrap();
    let addr = server.local_addr();
    let health = get(addr, "/healthz");
    assert!(
        health.contains(&format!("\"model\":\"{}\"", report.fingerprint)),
        "{health}"
    );
    server.shutdown();
    // Shutdown clears the process-global identity again.
    assert!(rpm::obs::drift::model_fingerprint().is_none());
}

#[test]
fn profileless_models_serve_with_drift_unavailable() {
    let _gate = gate();
    let (model, _, test) = trained();
    // A v1 save carries no profile section — the stand-in for any model
    // persisted before reference profiles existed.
    let mut v1 = Vec::new();
    model.save_v1(&mut v1).unwrap();
    let (profileless, report) = load_verified(&v1, true).unwrap();
    assert_eq!(report.profile_samples, 0);
    assert!(profileless.reference_profile().is_none());

    let mut server = Server::start(Arc::new(profileless), &serve_config()).unwrap();
    let addr = server.local_addr();
    // Traffic flows fine; drift just has no baseline to compare against.
    let r = post(addr, &jsonl_body(&test.series[0]));
    assert!(r.starts_with("HTTP/1.0 200"), "{r}");
    assert!(get(addr, "/debug/drift").contains("\"status\":\"unavailable\""));
    let health = get(addr, "/healthz");
    assert!(
        health.contains("\"status\":\"ok\"") && health.contains("\"drift\":\"unavailable\""),
        "{health}"
    );
    server.shutdown();
}
