//! End-to-end `rpm-cli` observability tests: train a tiny model through
//! the real binary with `RPM_LOG=spans,json=…`, then exercise
//! `obs summary`, `obs diff` (identical reports pass; an injected
//! counter regression fails with a non-zero exit), and
//! `classify --metrics-addr` (scraping `/metrics` from the live
//! process).

use rpm::data::ucr::write_ucr;
use rpm::data::{generate, DatasetSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rpm-cli"))
}

fn run(dir: &Path, env_log: Option<&str>, args: &[&str]) -> std::process::Output {
    let mut cmd = cli();
    cmd.current_dir(dir).args(args).env_remove("RPM_LOG");
    if let Some(log) = env_log {
        cmd.env("RPM_LOG", log);
    }
    cmd.output().expect("spawn rpm-cli")
}

fn assert_success(out: &std::process::Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Writes a tiny CBF-style train/test pair in UCR format, returning the
/// two paths.
fn write_tiny_dataset(dir: &Path) -> (PathBuf, PathBuf) {
    let spec = DatasetSpec {
        name: "CBF",
        classes: 3,
        train: 9,
        test: 12,
        length: 64,
    };
    let (train, test) = generate(&spec, 7);
    let train_path = dir.join("tiny_TRAIN");
    let test_path = dir.join("tiny_TEST");
    write_ucr(&train, std::fs::File::create(&train_path).unwrap()).unwrap();
    write_ucr(&test, std::fs::File::create(&test_path).unwrap()).unwrap();
    (train_path, test_path)
}

#[test]
fn obs_analytics_and_metrics_endpoint_end_to_end() {
    let dir = std::env::temp_dir().join(format!("rpm-obs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (train_path, test_path) = write_tiny_dataset(&dir);

    // --- train with a JSONL report (fixed params: fast, deterministic) --
    let out = run(
        &dir,
        Some("spans,json=base.jsonl"),
        &[
            "train",
            train_path.to_str().unwrap(),
            "--model",
            "model.rpm",
            "--window",
            "16",
            "--paa",
            "4",
            "--alpha",
            "4",
        ],
    );
    assert_success(&out, "train");
    let base = dir.join("base.jsonl");
    let report = std::fs::read_to_string(&base).expect("JSONL report written");
    assert!(report.contains("\"type\":\"meta\""), "{report}");

    // --- obs summary renders stages + counters -------------------------
    let out = run(&dir, None, &["obs", "summary", "base.jsonl"]);
    assert_success(&out, "obs summary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stages:"), "{stdout}");
    assert!(stdout.contains("counters:"), "{stdout}");

    // --- obs diff: identical reports pass ------------------------------
    std::fs::copy(&base, dir.join("same.jsonl")).unwrap();
    let out = run(&dir, None, &["obs", "diff", "base.jsonl", "same.jsonl"]);
    assert_success(&out, "obs diff (identical)");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 regression(s)"), "{stdout}");

    // --- obs diff: injected counter regression fails -------------------
    // Triple one deterministic counter's value; drift is way past 20%.
    let needle = "\"type\":\"counter\",\"name\":\"engine.jobs\",\"value\":";
    let line = report
        .lines()
        .find(|l| l.contains(needle))
        .expect("engine.jobs counter in report");
    let value: u64 = line
        .rsplit(':')
        .next()
        .unwrap()
        .trim_end_matches('}')
        .parse()
        .unwrap();
    assert!(value > 0, "engine.jobs should be populated: {line}");
    let broken = report.replace(
        &format!("{needle}{value}}}"),
        &format!("{needle}{}}}", value * 3),
    );
    assert_ne!(broken, report, "injection must change the report");
    std::fs::write(dir.join("regressed.jsonl"), broken).unwrap();
    let out = run(
        &dir,
        None,
        &[
            "obs",
            "diff",
            "base.jsonl",
            "regressed.jsonl",
            "--tolerance",
            "20%",
        ],
    );
    assert!(
        !out.status.success(),
        "diff must fail on injected regression:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("!!"), "regression marker missing: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regression"), "{stderr}");

    // --- classify --metrics-addr: scrape the live process --------------
    let mut child = cli()
        .current_dir(&dir)
        .env_remove("RPM_LOG")
        .args([
            "classify",
            "model.rpm",
            test_path.to_str().unwrap(),
            "--metrics-addr",
            "127.0.0.1:0",
            "--metrics-linger",
            "30",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn classify");

    // The bound address is announced on stderr before classification.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        let n = stderr.read_line(&mut line).expect("read classify stderr");
        assert!(n > 0, "classify exited before announcing /metrics");
        if let Some(rest) = line.trim().strip_prefix("serving /metrics on ") {
            break rest.to_string();
        }
    };

    // Wait for the linger message: classification is done, metrics final.
    loop {
        let mut line = String::new();
        let n = stderr.read_line(&mut line).expect("read classify stderr");
        assert!(n > 0, "classify exited before lingering");
        if line.contains("lingering") {
            break;
        }
    }

    let mut stream = TcpStream::connect(&addr).expect("connect /metrics");
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");
    assert!(
        response.contains("# TYPE rpm_predict_series_total counter"),
        "{response}"
    );
    assert!(
        response.contains("rpm_predict_latency_ns_bucket{le=\"+Inf\"}"),
        "{response}"
    );

    child.kill().expect("stop lingering classify");
    child.wait().unwrap();

    std::fs::remove_dir_all(&dir).unwrap();
}
