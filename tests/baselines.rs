//! Integration tests for the five comparison classifiers on generated
//! suite data: each must be clearly better than chance on datasets that
//! suit it, and the cross-method relationships the paper relies on must
//! hold in the small.

use rpm::baselines::{
    Classifier, FastShapelets, FastShapeletsParams, LearningShapelets, LearningShapeletsParams,
    OneNnDtw, OneNnEuclidean, SaxVsm, SaxVsmParams,
};
use rpm::prelude::*;
use rpm_data::{generate, registry::spec_by_name};

fn small(name: &str, train_n: usize, test_n: usize) -> (Dataset, Dataset) {
    let mut spec = spec_by_name(name).unwrap();
    spec.train = train_n;
    spec.test = test_n;
    generate(&spec, 100)
}

#[test]
fn nn_ed_on_gun_point() {
    let (train, test) = small("GunPoint", 30, 40);
    let m = OneNnEuclidean::train(&train);
    let err = error_rate(&test.labels, &m.predict_batch(&test.series));
    assert!(err < 0.2, "NN-ED error {err}");
}

#[test]
fn nn_dtw_on_cbf_beats_chance() {
    let (train, test) = small("CBF", 18, 30);
    let m = OneNnDtw::train(&train);
    let err = error_rate(&test.labels, &m.predict_batch(&test.series));
    assert!(err < 0.3, "NN-DTWB error {err} (chance 0.67)");
}

#[test]
fn sax_vsm_on_cbf() {
    let (train, test) = small("CBF", 18, 30);
    let m = SaxVsm::train(&train, &SaxVsmParams::for_length(128));
    let err = error_rate(&test.labels, &m.predict_batch(&test.series));
    assert!(err < 0.35, "SAX-VSM error {err}");
}

#[test]
fn fast_shapelets_on_gun_point() {
    let (train, test) = small("GunPoint", 30, 40);
    let m = FastShapelets::train(&train, &FastShapeletsParams::default());
    let err = error_rate(&test.labels, &m.predict_batch(&test.series));
    assert!(err < 0.3, "FS error {err}");
}

#[test]
fn learning_shapelets_on_gun_point() {
    let (train, test) = small("GunPoint", 30, 40);
    let m = LearningShapelets::train(
        &train,
        &LearningShapeletsParams {
            max_iter: 150,
            ..Default::default()
        },
    );
    let err = error_rate(&test.labels, &m.predict_batch(&test.series));
    assert!(err < 0.3, "LS error {err}");
}

#[test]
fn all_methods_agree_on_an_easy_dataset() {
    // Trace transients are nearly separable; every method should be far
    // from chance (0.75), demonstrating the harness treats them fairly.
    let (train, test) = small("Trace", 40, 40);
    let errs = [
        error_rate(
            &test.labels,
            &OneNnEuclidean::train(&train).predict_batch(&test.series),
        ),
        error_rate(
            &test.labels,
            &SaxVsm::train(&train, &SaxVsmParams::for_length(200)).predict_batch(&test.series),
        ),
        error_rate(
            &test.labels,
            &FastShapelets::train(&train, &FastShapeletsParams::default())
                .predict_batch(&test.series),
        ),
        error_rate(
            &test.labels,
            &RpmClassifier::train(&train, &RpmConfig::fixed(SaxConfig::new(40, 4, 4)))
                .unwrap()
                .predict_batch(&test.series),
        ),
    ];
    for (i, e) in errs.iter().enumerate() {
        assert!(*e < 0.4, "method {i} error {e}");
    }
}

#[test]
fn shapelet_transform_on_gun_point() {
    use rpm::baselines::{ShapeletTransform, ShapeletTransformParams};
    let (train, test) = small("GunPoint", 30, 40);
    let m = ShapeletTransform::train(&train, &ShapeletTransformParams::default());
    let err = error_rate(&test.labels, &m.predict_batch(&test.series));
    assert!(err < 0.3, "ST error {err}");
}

#[test]
fn any_classifier_works_on_rpm_features() {
    // §3.1: the transformed space works with any classifier. Train RPM
    // once, reuse its features with SVM (built in), kNN, logistic, and
    // the RBF kernel SVM; all must beat chance clearly.
    use rpm::core::transform_set;
    use rpm::ml::{KernelSvm, KernelSvmParams};
    use rpm::ml::{Knn, Logistic, LogisticParams};
    let (train, test) = small("CBF", 18, 30);
    let model = RpmClassifier::train(&train, &RpmConfig::fixed(SaxConfig::new(24, 4, 4))).unwrap();
    let values: Vec<Vec<f64>> = model.patterns().iter().map(|p| p.values.clone()).collect();
    let train_f = transform_set(&train.series, &values, false, true);
    let test_f = transform_set(&test.series, &values, false, true);

    let svm_err = error_rate(&test.labels, &model.predict_batch(&test.series));
    let knn = Knn::train(&train_f, &train.labels, 3);
    let knn_err = error_rate(&test.labels, &knn.predict_batch(&test_f));
    let lg = Logistic::train(&train_f, &train.labels, &LogisticParams::default());
    let lg_preds: Vec<usize> = test_f.iter().map(|r| lg.predict(r)).collect();
    let lg_err = error_rate(&test.labels, &lg_preds);
    let rbf = KernelSvm::train(&train_f, &train.labels, &KernelSvmParams::default());
    let rbf_err = error_rate(&test.labels, &rbf.predict_batch(&test_f));

    for (name, err) in [
        ("svm", svm_err),
        ("knn", knn_err),
        ("logistic", lg_err),
        ("rbf-svm", rbf_err),
    ] {
        assert!(err < 0.35, "{name} error {err} (chance 0.67)");
    }
}

#[test]
fn rpm_is_much_faster_than_learning_shapelets() {
    // The core Table 2 claim, verified in the small: same data, wall
    // clock, identical fixed-parameter footing for RPM.
    let (train, test) = small("CBF", 18, 20);
    let t0 = std::time::Instant::now();
    let rpm = RpmClassifier::train(&train, &RpmConfig::fixed(SaxConfig::new(32, 4, 4))).unwrap();
    rpm.predict_batch(&test.series);
    let rpm_t = t0.elapsed();

    let t1 = std::time::Instant::now();
    let ls = LearningShapelets::train(
        &train,
        &LearningShapeletsParams {
            max_iter: 200,
            ..Default::default()
        },
    );
    ls.predict_batch(&test.series);
    let ls_t = t1.elapsed();

    assert!(
        ls_t > rpm_t,
        "LS ({ls_t:?}) should be slower than fixed-parameter RPM ({rpm_t:?})"
    );
}
