//! Sequitur vs Re-Pair through the full RPM pipeline: the paper's claim
//! that the technique "works with other (context-free) GI algorithms"
//! (§3.2.2), verified end to end.

use rpm::core::{GrammarAlgorithm, RpmClassifier, RpmConfig};
use rpm::grammar::{infer, infer_repair};
use rpm::prelude::*;

#[test]
fn both_inducers_reproduce_any_input() {
    let inputs: Vec<Vec<u32>> = vec![
        vec![],
        vec![1],
        (0..200).map(|i| (i * i) % 5).collect(),
        vec![3; 40],
        (0..150).map(|i| (i / 7) as u32 % 3).collect(),
    ];
    for input in inputs {
        assert_eq!(infer(&input).axiom().expansion, input);
        assert_eq!(infer_repair(&input).axiom().expansion, input);
    }
}

#[test]
fn repair_rules_are_at_least_as_frequent() {
    // Re-Pair picks the globally most frequent digram first, so its top
    // rule's occurrence count matches or beats Sequitur's.
    let input: Vec<u32> = (0..240).map(|i| (i % 6) as u32).collect();
    let top = |g: &rpm::grammar::Grammar| {
        g.repeated_rules()
            .map(|(_, r)| r.occurrences.len())
            .max()
            .unwrap_or(0)
    };
    let s = top(&infer(&input));
    let r = top(&infer_repair(&input));
    assert!(r >= s, "Re-Pair top rule {r} vs Sequitur {s}");
}

#[test]
fn rpm_classifies_well_with_either_inducer() {
    let train = rpm::data::cbf::generate(10, 128, 71);
    let test = rpm::data::cbf::generate(20, 128, 72);
    let base = RpmConfig::fixed(SaxConfig::new(32, 4, 4));
    for (name, grammar) in [
        ("sequitur", GrammarAlgorithm::Sequitur),
        ("repair", GrammarAlgorithm::RePair),
    ] {
        let config = RpmConfig {
            grammar,
            ..base.clone()
        };
        let model = RpmClassifier::train(&train, &config).unwrap();
        let err = error_rate(&test.labels, &model.predict_batch(&test.series));
        assert!(err < 0.2, "{name}: error {err}");
        assert!(!model.patterns().is_empty(), "{name}: no patterns");
    }
}

#[test]
fn exploration_api_is_inducer_agnostic_on_motif_locations() {
    // Both grammars must find recurring structure in a periodic signal at
    // overlapping locations (exact rule sets legitimately differ).
    let s: Vec<f64> = (0..400).map(|i| (i as f64 * 0.3).sin()).collect();
    let sax = SaxConfig::new(20, 4, 4);
    let m = rpm::core::discover_motifs(&s, &sax);
    assert!(!m.is_empty());
    // Re-Pair route: intern words manually.
    let words = rpm::sax::discretize(&s, &sax, true);
    let mut interner = std::collections::HashMap::new();
    let tokens: Vec<u32> = words
        .iter()
        .map(|w| {
            let next = interner.len() as u32;
            *interner.entry(w.word.clone()).or_insert(next)
        })
        .collect();
    let g = infer_repair(&tokens);
    assert!(g.rules.len() > 1, "Re-Pair found no repeated structure");
}
