//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning the SAX → grammar → candidate → transform pipeline.

use proptest::prelude::*;
use rpm::core::{pattern_distance, transform_series};
use rpm::grammar::infer;
use rpm::sax::{discretize, SaxConfig};
use rpm::ts::{paa, rotate, znorm};
use rpm_baselines::dtw_distance;

/// Random-walk series generator (realistic autocorrelation).
fn random_walk(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, len).prop_map(|steps| {
        let mut acc = 0.0;
        steps
            .into_iter()
            .map(|s| {
                acc += s;
                acc
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Discretizing any series and feeding the interned words into
    /// Sequitur must reproduce the exact token stream on expansion.
    #[test]
    fn sax_to_grammar_roundtrip(series in random_walk(120)) {
        let cfg = SaxConfig::new(16, 4, 4);
        let words = discretize(&series, &cfg, true);
        let mut interner = std::collections::HashMap::new();
        let tokens: Vec<u32> = words
            .iter()
            .map(|w| {
                let next = interner.len() as u32;
                *interner.entry(w.word.clone()).or_insert(next)
            })
            .collect();
        let g = infer(&tokens);
        prop_assert_eq!(&g.axiom().expansion, &tokens);
    }

    /// Numerosity reduction never reorders offsets and never produces
    /// adjacent duplicates.
    #[test]
    fn numerosity_reduction_invariants(series in random_walk(100)) {
        let cfg = SaxConfig::new(12, 4, 3);
        let words = discretize(&series, &cfg, true);
        for pair in words.windows(2) {
            prop_assert!(pair[0].offset < pair[1].offset);
            prop_assert!(pair[0].word != pair[1].word);
        }
    }

    /// The pattern distance is symmetric and zero on identity.
    #[test]
    fn pattern_distance_symmetry(a in random_walk(40), b in random_walk(25)) {
        let d1 = pattern_distance(&a, &b, true);
        let d2 = pattern_distance(&b, &a, true);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!(pattern_distance(&a, &a, true) < 1e-9);
    }

    /// The rotation-invariant transform never exceeds the plain one.
    #[test]
    fn rotation_invariant_transform_is_a_lower_envelope(
        series in random_walk(80),
        p1 in random_walk(12),
        p2 in random_walk(20),
    ) {
        let pats = vec![p1, p2];
        let plain = transform_series(&series, &pats, false, true);
        let inv = transform_series(&series, &pats, true, true);
        for (a, b) in inv.iter().zip(&plain) {
            prop_assert!(a <= b);
        }
    }

    /// Rotating a series twice by complementary cuts restores it.
    #[test]
    fn rotation_composes(series in random_walk(50), cut in 0usize..50) {
        let r = rotate(&series, cut);
        let back = rotate(&r, (50 - cut) % 50);
        prop_assert_eq!(back, series);
    }

    /// PAA of the z-normalized series keeps values within the z-range.
    #[test]
    fn paa_preserves_value_envelope(series in random_walk(64), w in 1usize..32) {
        let z = znorm(&series);
        let lo = z.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in paa(&z, w) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// DTW never exceeds the Euclidean (identity-alignment) distance.
    #[test]
    fn dtw_lower_bounds_euclidean(a in random_walk(30), b in random_walk(30)) {
        let eu = rpm::ts::euclidean(&a, &b);
        prop_assert!(dtw_distance(&a, &b) <= eu + 1e-9);
    }

    /// Transform features are always finite and non-negative.
    #[test]
    fn transform_features_are_finite(series in random_walk(60), p in random_walk(90)) {
        // Pattern deliberately longer than the series to hit the
        // resampling fallback too.
        let f = transform_series(&series, &[p], false, true);
        prop_assert!(f[0].is_finite());
        prop_assert!(f[0] >= 0.0);
    }

    /// A linear SVM trained on any cleanly margin-separated 1-D data must
    /// classify the training points correctly.
    #[test]
    fn linear_svm_fits_separated_clusters(
        gap in 2.0f64..20.0,
        spread in 0.01f64..0.4,
        n in 4usize..20,
    ) {
        use rpm::ml::{LinearSvm, SvmParams};
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let jitter = spread * ((i * 2654435761) % 97) as f64 / 97.0;
            rows.push(vec![jitter]);
            labels.push(0);
            rows.push(vec![gap + jitter]);
            labels.push(1);
        }
        let m = LinearSvm::train(&rows, &labels, &SvmParams::default());
        for (r, &l) in rows.iter().zip(&labels) {
            prop_assert_eq!(m.predict(r), l);
        }
    }

    /// k-means inertia never increases when k grows (with fixed seed the
    /// solver may be suboptimal, so allow a generous tolerance factor).
    #[test]
    fn kmeans_more_clusters_never_much_worse(seed in 0u64..500) {
        use rpm::cluster::kmeans;
        let points: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![((i * 37 + seed as usize) % 11) as f64, (i % 5) as f64])
            .collect();
        let k2 = kmeans(&points, 2, 50, seed);
        let k6 = kmeans(&points, 6, 50, seed);
        prop_assert!(k6.inertia <= k2.inertia * 1.5 + 1e-9);
    }

    /// CFS always returns in-range, deduplicated feature indices.
    #[test]
    fn cfs_indices_are_valid(n_features in 1usize..8, n in 6usize..30) {
        use rpm::ml::{cfs_select, CfsParams};
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n_features).map(|j| ((i * (j + 3) * 7919) % 23) as f64).collect())
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let sel = cfs_select(&rows, &labels, &CfsParams::default());
        let mut sorted = sel.clone();
        sorted.dedup();
        prop_assert_eq!(&sorted, &sel, "sorted + deduplicated");
        for &i in &sel {
            prop_assert!(i < n_features);
        }
    }

    /// Wilcoxon p-values are valid probabilities, and identical samples
    /// are never significant.
    #[test]
    fn wilcoxon_p_is_a_probability(
        a in proptest::collection::vec(-10.0f64..10.0, 5..40),
    ) {
        use rpm::ml::wilcoxon_signed_rank;
        let b: Vec<f64> = a.iter().map(|x| x * 0.9 + 0.1).collect();
        let r = wilcoxon_signed_rank(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        let same = wilcoxon_signed_rank(&a, &a);
        prop_assert_eq!(same.p_value, 1.0);
    }

    /// Model persistence round trip preserves predictions for any
    /// trainable random dataset.
    #[test]
    fn persistence_roundtrip_random_data(seed in 0u64..20) {
        use rpm::prelude::*;
        let train = rpm::data::cbf::generate(6, 64, seed);
        let config = RpmConfig::fixed(SaxConfig::new(16, 4, 4));
        if let Ok(model) = RpmClassifier::train(&train, &config) {
            let mut buf = Vec::new();
            model.save(&mut buf).unwrap();
            let loaded = RpmClassifier::load(buf.as_slice()).unwrap();
            let probe = rpm::data::cbf::generate(2, 64, seed + 1000);
            prop_assert_eq!(
                model.predict_batch(&probe.series),
                loaded.predict_batch(&probe.series)
            );
        }
    }
}
