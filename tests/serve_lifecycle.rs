//! End-to-end acceptance tests for the model lifecycle: hot reload with
//! canary validation, automatic and manual rollback, crash-only worker
//! supervision, and the `/classify` body cap.
//!
//! The headline property is **zero-downtime reload**: with concurrent
//! traffic in flight across an `/admin/reload`, every request answers
//! `200`, and each response's `X-Model-Generation` header maps its
//! labels bit-identically to the offline predictions of the model that
//! generation serves — no torn batches, no half-swapped state.
//!
//! The drift monitor, model fingerprint, fault plan, and the metrics
//! registry are process-global, so every test here serializes on
//! [`gate`] like `tests/serve.rs` and `tests/resilience.rs` do.

use rpm::core::{model_fingerprint, RpmClassifier, RpmConfig};
use rpm::data::generate;
use rpm::data::registry::spec_by_name;
use rpm::sax::SaxConfig;
use rpm::serve::{load_verified, ReloadPolicy, ServeConfig, Server};
use rpm::ts::Dataset;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn cbf() -> (Dataset, Dataset) {
    let mut spec = spec_by_name("CBF").expect("CBF registered");
    spec.train = 12;
    spec.test = 8;
    generate(&spec, 2016)
}

fn train(dataset: &Dataset, window: usize) -> RpmClassifier {
    let config = RpmConfig::fixed(SaxConfig::new(window, 4, 4));
    RpmClassifier::train(dataset, &config).expect("train")
}

/// Serializes a model and returns (bytes, fingerprint-as-on-healthz).
fn saved(model: &RpmClassifier) -> (Vec<u8>, String) {
    let mut bytes = Vec::new();
    model.save(&mut bytes).expect("save");
    let fp = model_fingerprint(&bytes);
    (bytes, fp)
}

/// Writes candidate bytes to a unique temp file and returns its path.
fn temp_model(bytes: &[u8]) -> std::path::PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let path = std::env::temp_dir().join(format!(
        "rpm-lifecycle-{}-{}.rpm",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).expect("write temp model");
    path
}

/// Starts a server on the saved bytes so `/healthz` reports the exact
/// file fingerprint (the same path `rpm-cli serve` takes).
fn start_on(bytes: &[u8], config: &ServeConfig) -> Server {
    let (model, report) = load_verified(bytes, false).expect("verify");
    Server::start_verified(Arc::new(model), &report, config).expect("start")
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

fn jsonl_body(series: &[f64]) -> String {
    let rendered: Vec<String> = series.iter().map(|v| format!("{v}")).collect();
    format!("[{}]\n", rendered.join(","))
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn post_classify(addr: std::net::SocketAddr, body: &str) -> String {
    request(addr, "POST", "/classify", body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    request(addr, "GET", path, "")
}

fn reload(addr: std::net::SocketAddr, path: &std::path::Path) -> String {
    request(
        addr,
        "POST",
        "/admin/reload",
        &format!("{{\"path\":\"{}\"}}", path.display()),
    )
}

fn header_of<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    response.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

fn label_of(response: &str) -> usize {
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");
    response
        .split("\"label\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no label in {response}"))
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric label")
}

/// The serving fingerprint as `/healthz` reports it.
fn health_fingerprint(addr: std::net::SocketAddr) -> String {
    let health = get(addr, "/healthz");
    health
        .split("\"model\":\"")
        .nth(1)
        .unwrap_or_else(|| panic!("no model fingerprint in {health}"))
        .split('"')
        .next()
        .unwrap()
        .to_string()
}

/// A flat JSON integer field out of `/healthz`.
fn health_field(addr: std::net::SocketAddr, key: &str) -> u64 {
    let health = get(addr, "/healthz");
    health
        .split(&format!("\"{key}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("no {key} in {health}"))
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

#[test]
fn hot_reload_is_zero_downtime_and_generations_label_consistently() {
    let _g = gate();
    let (train_set, test_set) = cbf();
    let model_a = train(&train_set, 32);
    let model_b = train(&train_set, 24);
    let (bytes_a, fp_a) = saved(&model_a);
    let (bytes_b, fp_b) = saved(&model_b);
    assert_ne!(fp_a, fp_b, "distinct models must fingerprint apart");
    let path_b = temp_model(&bytes_b);

    // The tiny CBF reference profile (12 series) makes live PSI noisy
    // enough to page on perfectly healthy traffic; this test is about
    // the swap, not drift, so keep the monitor warming — otherwise the
    // probation watchdog would "rescue" us from the model under test.
    let config = ServeConfig {
        drift: rpm::obs::DriftConfig {
            min_samples: u64::MAX,
            ..rpm::obs::DriftConfig::default()
        },
        ..test_config()
    };
    let mut server = start_on(&bytes_a, &config);
    let addr = server.local_addr();
    assert_eq!(health_fingerprint(addr), fp_a);
    assert_eq!(health_field(addr, "generation"), 1);

    let expected_a = model_a.predict_batch(&test_set.series);
    let expected_b = model_b.predict_batch(&test_set.series);

    // Sustained concurrent traffic across the swap: client threads
    // hammer /classify while the main thread reloads mid-flight.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observations: Vec<(usize, u64, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = test_set
            .series
            .iter()
            .enumerate()
            .map(|(row, series)| {
                let body = jsonl_body(series);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let response = post_classify(addr, &body);
                        assert!(
                            response.starts_with("HTTP/1.0 200"),
                            "non-200 during reload: {response}"
                        );
                        let generation: u64 = header_of(&response, "X-Model-Generation")
                            .expect("generation header")
                            .parse()
                            .expect("numeric generation");
                        seen.push((row, generation, label_of(&response)));
                    }
                    seen
                })
            })
            .collect();

        // Let traffic establish on generation 1, swap, then let it run
        // on generation 2 before stopping the clients. Asserting only
        // after `stop` is raised keeps a failed swap from stranding the
        // client loops (a panic here would block the scope forever).
        std::thread::sleep(Duration::from_millis(150));
        let swapped = reload(addr, &path_b);
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
        assert!(swapped.starts_with("HTTP/1.0 200"), "{swapped}");
        assert!(swapped.contains("\"result\":\"swapped\""), "{swapped}");
        assert!(swapped.contains("\"generation\":2"), "{swapped}");
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    // Every response mapped to the generation that served it must carry
    // that generation's offline prediction, bit for bit.
    let mut gen1 = 0usize;
    let mut gen2 = 0usize;
    for (row, generation, label) in &observations {
        match generation {
            1 => {
                gen1 += 1;
                assert_eq!(
                    *label, expected_a[*row],
                    "generation 1 mislabeled row {row}"
                );
            }
            2 => {
                gen2 += 1;
                assert_eq!(
                    *label, expected_b[*row],
                    "generation 2 mislabeled row {row}"
                );
            }
            other => panic!("unexpected generation {other}"),
        }
    }
    assert!(gen1 > 0, "no traffic observed on the incumbent");
    assert!(gen2 > 0, "no traffic observed on the candidate");

    assert_eq!(health_fingerprint(addr), fp_b);
    assert_eq!(health_field(addr, "generation"), 2);
    let metrics = get(addr, "/metrics");
    assert!(metrics.contains("rpm_serve_generation 2"), "{metrics}");
    assert!(metrics.contains("rpm_serve_reloads_total"), "{metrics}");

    server.shutdown();
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn rejected_candidates_leave_the_serving_generation_untouched() {
    let _g = gate();
    let (train_set, test_set) = cbf();
    let model_a = train(&train_set, 32);
    let (bytes_a, fp_a) = saved(&model_a);

    let mut server = start_on(&bytes_a, &test_config());
    let addr = server.local_addr();
    let generation_before = health_field(addr, "generation");
    let rejected_before = health_field(addr, "reloads");

    // CRC corruption: flip a byte mid-stream.
    let mut corrupt = bytes_a.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    let corrupt_path = temp_model(&corrupt);
    let refused = reload(addr, &corrupt_path);
    assert!(refused.starts_with("HTTP/1.0 409"), "{refused}");
    assert!(
        refused.contains("\"reason\":\"verify_failed\""),
        "{refused}"
    );

    // Schema mismatch: a candidate trained without one of the classes
    // changes the /classify label vocabulary.
    let mut two_class = Dataset::new("two-class", Vec::new(), Vec::new());
    for (series, label) in train_set.series.iter().zip(&train_set.labels) {
        if *label < 2 {
            two_class.push(series.clone(), *label);
        }
    }
    let (bytes_narrow, _) = saved(&train(&two_class, 32));
    let narrow_path = temp_model(&bytes_narrow);
    let refused = reload(addr, &narrow_path);
    assert!(refused.starts_with("HTTP/1.0 409"), "{refused}");
    assert!(
        refused.contains("\"reason\":\"schema_mismatch\""),
        "{refused}"
    );

    // A missing candidate file is an I/O rejection, not a crash.
    let refused = reload(addr, std::path::Path::new("/nonexistent/model.rpm"));
    assert!(refused.starts_with("HTTP/1.0 409"), "{refused}");
    assert!(refused.contains("\"reason\":\"io\""), "{refused}");

    // Three rejections later: same generation, same fingerprint, and
    // the incumbent still serves correct labels.
    assert_eq!(health_field(addr, "generation"), generation_before);
    assert_eq!(health_field(addr, "reloads"), rejected_before);
    assert_eq!(health_fingerprint(addr), fp_a);
    let response = post_classify(addr, &jsonl_body(&test_set.series[0]));
    assert_eq!(
        label_of(&response),
        model_a.predict_batch(&test_set.series[..1])[0]
    );

    server.shutdown();
    let _ = std::fs::remove_file(&corrupt_path);
    let _ = std::fs::remove_file(&narrow_path);
}

#[test]
fn canary_gate_rejects_profile_divergent_candidates() {
    let _g = gate();
    let (train_set, _) = cbf();
    let model_a = train(&train_set, 32);
    let (bytes_a, fp_a) = saved(&model_a);

    // A candidate trained on amplitude-shifted data: same classes, same
    // wire schema, but its training-time reference profile diverges —
    // exactly the "retrained on the wrong upstream" incident the canary
    // gate exists for.
    let mut shifted = Dataset::new("shifted", Vec::new(), Vec::new());
    for (series, label) in train_set.series.iter().zip(&train_set.labels) {
        shifted.push(series.iter().map(|v| v * 3.0 + 10.0).collect(), *label);
    }
    let (bytes_shifted, _) = saved(&train(&shifted, 32));
    let shifted_path = temp_model(&bytes_shifted);

    let config = ServeConfig {
        reload: ReloadPolicy {
            canary_psi: 0.2,
            ..ReloadPolicy::default()
        },
        ..test_config()
    };
    let mut server = start_on(&bytes_a, &config);
    let addr = server.local_addr();

    let refused = reload(addr, &shifted_path);
    assert!(refused.starts_with("HTTP/1.0 409"), "{refused}");
    assert!(
        refused.contains("\"reason\":\"profile_divergence\""),
        "{refused}"
    );
    assert_eq!(health_fingerprint(addr), fp_a);
    assert_eq!(health_field(addr, "generation"), 1);

    // The same candidate passes a permissive gate: the threshold is the
    // policy, not the mechanism.
    let permissive = ServeConfig {
        reload: ReloadPolicy {
            canary_psi: f64::INFINITY,
            ..ReloadPolicy::default()
        },
        ..test_config()
    };
    server.shutdown();
    let mut server = start_on(&bytes_a, &permissive);
    let addr = server.local_addr();
    let swapped = reload(addr, &shifted_path);
    assert!(swapped.starts_with("HTTP/1.0 200"), "{swapped}");

    server.shutdown();
    let _ = std::fs::remove_file(&shifted_path);
}

#[test]
fn manual_rollback_is_an_involution_on_the_warm_pair() {
    let _g = gate();
    let (train_set, _) = cbf();
    let (bytes_a, fp_a) = saved(&train(&train_set, 32));
    let (bytes_b, fp_b) = saved(&train(&train_set, 24));
    let path_b = temp_model(&bytes_b);

    let mut server = start_on(&bytes_a, &test_config());
    let addr = server.local_addr();

    // No previous generation yet: rollback refuses.
    let refused = request(addr, "POST", "/admin/rollback", "");
    assert!(refused.starts_with("HTTP/1.0 409"), "{refused}");
    assert!(
        refused.contains("\"reason\":\"no_previous_generation\""),
        "{refused}"
    );

    assert!(reload(addr, &path_b).starts_with("HTTP/1.0 200"));
    assert_eq!(health_fingerprint(addr), fp_b);

    // Rollback restores the prior fingerprint under a fresh generation
    // number (the clock orders swaps; fingerprints carry identity).
    let rolled = request(addr, "POST", "/admin/rollback", "");
    assert!(rolled.starts_with("HTTP/1.0 200"), "{rolled}");
    assert!(rolled.contains("\"result\":\"rolled_back\""), "{rolled}");
    assert_eq!(health_fingerprint(addr), fp_a);
    assert_eq!(health_field(addr, "generation"), 3);
    assert!(health_field(addr, "rollbacks") >= 1);

    // Involution: rolling back the rollback returns to the candidate.
    let rolled = request(addr, "POST", "/admin/rollback", "");
    assert!(rolled.starts_with("HTTP/1.0 200"), "{rolled}");
    assert_eq!(health_fingerprint(addr), fp_b);
    assert_eq!(health_field(addr, "generation"), 4);

    server.shutdown();
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn worker_panics_are_quarantined_and_the_pool_self_heals() {
    let _g = gate();
    let (train_set, test_set) = cbf();
    let (bytes_a, _) = saved(&train(&train_set, 32));
    let mut server = start_on(&bytes_a, &test_config());
    let addr = server.local_addr();
    let body = jsonl_body(&test_set.series[0]);
    let restarts_before = health_field(addr, "worker_restarts");

    // Armed worker fault: the panic fires *outside* process_batch's
    // inner guard, killing the worker thread mid-batch. The request
    // must come back as a typed 500 (quarantined), never a hang.
    rpm::obs::fault::install(rpm::obs::fault::parse("serve.worker:panic:1:0").expect("spec"));
    let quarantined = post_classify(addr, &body);
    rpm::obs::fault::clear();
    assert!(quarantined.starts_with("HTTP/1.0 500"), "{quarantined}");
    assert!(quarantined.contains("quarantined"), "{quarantined}");

    // The supervisor respawns the dead worker; traffic recovers without
    // a restart. Poll: respawn rides an exponential backoff.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let response = post_classify(addr, &body);
        if response.starts_with("HTTP/1.0 200") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pool did not self-heal: {response}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while health_field(addr, "worker_restarts") <= restarts_before {
        assert!(Instant::now() < deadline, "restart counter never moved");
        std::thread::sleep(Duration::from_millis(50));
    }
    let metrics = get(addr, "/metrics");
    assert!(
        metrics.contains("rpm_serve_worker_restarts_total"),
        "{metrics}"
    );
    assert!(metrics.contains("rpm_serve_quarantined_total"), "{metrics}");

    server.shutdown();
}

#[test]
fn probation_error_spike_rolls_back_automatically() {
    let _g = gate();
    let (train_set, test_set) = cbf();
    let (bytes_a, fp_a) = saved(&train(&train_set, 32));
    let (bytes_b, fp_b) = saved(&train(&train_set, 24));
    let path_b = temp_model(&bytes_b);

    let config = ServeConfig {
        reload: ReloadPolicy {
            probation: Duration::from_secs(120),
            probation_min_errors: 3,
            probation_error_pct: 0.1,
            ..ReloadPolicy::default()
        },
        ..test_config()
    };
    let mut server = start_on(&bytes_a, &config);
    let addr = server.local_addr();
    let body = jsonl_body(&test_set.series[0]);

    assert!(reload(addr, &path_b).starts_with("HTTP/1.0 200"));
    assert_eq!(health_fingerprint(addr), fp_b);

    // The new generation starts failing (armed batch fault standing in
    // for a model that predicts garbage): errors spike inside the
    // probation window.
    rpm::obs::fault::install(rpm::obs::fault::parse("serve.batch:io:1:0").expect("spec"));
    for _ in 0..5 {
        let response = post_classify(addr, &body);
        assert!(response.starts_with("HTTP/1.0 500"), "{response}");
    }
    rpm::obs::fault::clear();

    // The supervisor loop ticks probation every ~100ms; driving it
    // directly keeps the test deterministic.
    let outcome = server
        .lifecycle()
        .tick()
        .expect("error spike inside probation must trigger rollback");
    assert_eq!(outcome.fingerprint, fp_a);
    assert_eq!(health_fingerprint(addr), fp_a);
    assert!(health_field(addr, "rollbacks") >= 1);

    // Probation cleared with the rollback: another tick is a no-op.
    assert!(server.lifecycle().tick().is_none());

    server.shutdown();
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn oversized_classify_bodies_are_rejected_with_413() {
    let _g = gate();
    let (train_set, test_set) = cbf();
    let (bytes_a, _) = saved(&train(&train_set, 32));
    let config = ServeConfig {
        limits: rpm::obs::ServeLimits {
            max_body_bytes: 512,
            ..rpm::obs::ServeLimits::default()
        },
        ..test_config()
    };
    let mut server = start_on(&bytes_a, &config);
    let addr = server.local_addr();

    let oversized = jsonl_body(&vec![1.0; 4096]);
    assert!(oversized.len() > 512);
    let refused = post_classify(addr, &oversized);
    assert!(refused.starts_with("HTTP/1.0 413"), "{refused}");

    // Within the cap still serves (CBF series render well under 512
    // bytes only when short; use a tiny synthetic request instead).
    let small = jsonl_body(&test_set.series[0][..8]);
    assert!(small.len() <= 512);
    let response = post_classify(addr, &small);
    // Short series may legitimately 400 (shorter than the SAX window);
    // the point is the cap admitted it to parsing.
    assert!(
        response.starts_with("HTTP/1.0 200") || response.starts_with("HTTP/1.0 400"),
        "{response}"
    );

    server.shutdown();
}
