//! Admissibility property tests for the batched cascade's lower bounds.
//!
//! The batched kernel prunes a (pattern, window) pair whenever a cheap
//! lower bound on the squared z-normalized distance exceeds the pattern's
//! best-so-far. Pruning is sound only if every tier is **admissible**:
//! `lb(pattern, window) ≤ exact(pattern, window)` on every input the
//! cascade can see. These tests drive [`rpm::ts::BatchedMatch::audit`] —
//! which recomputes each tier's bound exactly as the production scan does
//! alongside the exhaustive exact distance — over random and adversarial
//! inputs, and assert the inequality for every tier at every window.
//!
//! All quantities are *squared un-normalized* distances, matching the
//! cascade's internal accumulator. Tolerance mirrors the production
//! deflation guards (`TIER1_DEFLATE`/`TIER23_DEFLATE` in
//! `crates/ts/src/batched.rs`): a bound may exceed the exact value only
//! by floating-point rounding, never materially.
//!
//! Case count is read from `PROPTEST_CASES` (default 256 — the PR-gate
//! budget); the nightly CI sweep runs with `PROPTEST_CASES=2048`.

use proptest::prelude::*;
use rpm::sax::breakpoints;
use rpm::ts::{BatchedMatch, MatchKernel, MatchPlan};

/// Relative slack granted for bound-vs-exact comparison: the production
/// cascade deflates tier-2/3 bounds by `1e-7` before pruning, so a bound
/// is admissible-in-practice iff it stays within this band of the exact
/// value. Tier 1's terms are bitwise addends of the exact sum, but the
/// audit recomputes them from the same rolling stats the scan uses, so
/// the same band applies.
const REL_SLACK: f64 = 1e-7;
/// Absolute floor for near-zero exact distances.
const ABS_SLACK: f64 = 1e-9;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

fn admissible(lb: f64, exact: f64) -> bool {
    lb <= exact * (1.0 + REL_SLACK) + ABS_SLACK
}

/// Build a SAX-enabled batched set and audit it over `series`, asserting
/// every tier's bound is admissible at every (pattern, window) pair and
/// that tier 3 never exceeds tier 2 (MINDIST over shared segmentation is
/// dominated by the envelope bound).
fn assert_all_tiers_admissible(patterns: &[Vec<f64>], series: &[f64]) {
    let plans: Vec<MatchPlan> = patterns
        .iter()
        .map(|p| MatchPlan::with_kernel(p, MatchKernel::Batched))
        .collect();
    let set = BatchedMatch::with_sax_cuts(&plans, Some(breakpoints(8)));
    for row in set.audit(series) {
        assert!(
            admissible(row.lb_first_last, row.exact),
            "tier 1 inadmissible: pattern {} pos {}: lb {:.17e} > exact {:.17e}",
            row.pattern,
            row.position,
            row.lb_first_last,
            row.exact
        );
        if let Some(lb2) = row.lb_envelope {
            assert!(
                admissible(lb2, row.exact),
                "tier 2 inadmissible: pattern {} pos {}: lb {:.17e} > exact {:.17e}",
                row.pattern,
                row.position,
                lb2,
                row.exact
            );
            if let Some(lb3) = row.lb_sax {
                assert!(
                    admissible(lb3, row.exact),
                    "tier 3 inadmissible: pattern {} pos {}: lb {:.17e} > exact {:.17e}",
                    row.pattern,
                    row.position,
                    lb3,
                    row.exact
                );
                assert!(
                    lb3 <= lb2 * (1.0 + REL_SLACK) + ABS_SLACK,
                    "tier 3 not dominated by tier 2: pattern {} pos {}: sax {:.17e} > envelope {:.17e}",
                    row.pattern,
                    row.position,
                    lb3,
                    lb2
                );
            }
        }
    }
}

/// Random-walk series generator (realistic autocorrelation).
fn random_walk(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, len).prop_map(|steps| {
        let mut acc = 0.0;
        steps
            .into_iter()
            .map(|s| {
                acc += s;
                acc
            })
            .collect()
    })
}

/// Coin-flip strategy (the vendored proptest shim has no `any::<bool>()`).
fn coin() -> impl Strategy<Value = bool> {
    (0u32..2).prop_map(|b| b == 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random walks, pattern lengths straddling the envelope-tier
    /// threshold (`MIN_ENVELOPE_LEN = 16`) so both the tier-1-only and
    /// full-cascade paths are audited.
    #[test]
    fn bounds_admissible_on_random_walks(
        patterns in proptest::collection::vec(random_walk(4..48), 1..5),
        series in random_walk(48..224),
    ) {
        assert_all_tiers_admissible(&patterns, &series);
    }

    /// Constant plateaus spliced mid-series create σ = 0 windows right
    /// next to barely-variable ones — the regime where rolling-stat
    /// cancellation is most dangerous for a bound.
    #[test]
    fn bounds_admissible_with_plateaus(
        patterns in proptest::collection::vec(random_walk(16..40), 1..4),
        series in random_walk(64..160),
        start in 0usize..64,
        run in 8usize..48,
        level in -50.0f64..50.0,
    ) {
        let mut series = series;
        let begin = start.min(series.len());
        let end = (start + run).min(series.len());
        for v in &mut series[begin..end] {
            *v = level;
        }
        assert_all_tiers_admissible(&patterns, &series);
    }

    /// ±1e5..1e6 vertical offsets: window means dwarf window variance, so
    /// any bound computed from rolling statistics inherits maximal
    /// cancellation error. Admissibility must survive.
    #[test]
    fn bounds_admissible_with_large_offsets(
        patterns in proptest::collection::vec(random_walk(16..40), 1..4),
        series in random_walk(48..128),
        magnitude in 1.0e5f64..1.0e6,
        negative in coin(),
    ) {
        let offset = if negative { -magnitude } else { magnitude };
        let shifted: Vec<f64> = series.iter().map(|x| x + offset).collect();
        assert_all_tiers_admissible(&patterns, &shifted);
    }

    /// Near-constant series: jitter well above the σ = 0 threshold but
    /// small against the level, the other cancellation-heavy regime.
    #[test]
    fn bounds_admissible_on_near_constant_series(
        patterns in proptest::collection::vec(random_walk(16..32), 1..4),
        jitter in proptest::collection::vec(-1.0f64..1.0, 48..128),
        amplitude in 1.0e-3f64..10.0,
        level in -1.0e4f64..1.0e4,
    ) {
        let series: Vec<f64> = jitter.iter().map(|j| level + amplitude * j).collect();
        assert_all_tiers_admissible(&patterns, &series);
    }

    /// The bound at the *matching* window of an embedded pattern must be
    /// ~0 (it cannot price a perfect match out of the scan), and stay
    /// admissible everywhere else.
    #[test]
    fn embedded_pattern_window_is_not_priced_out(
        pattern in random_walk(16..32),
        prefix in random_walk(8..48),
        suffix in random_walk(8..48),
        scale in 0.5f64..3.0,
        shift in -10.0f64..10.0,
    ) {
        let mut series = prefix.clone();
        let at = series.len();
        // Affine copies z-normalize to the pattern exactly: exact ≈ 0.
        series.extend(pattern.iter().map(|v| v * scale + shift));
        series.extend_from_slice(&suffix);
        assert_all_tiers_admissible(std::slice::from_ref(&pattern), &series);

        let plans = vec![MatchPlan::with_kernel(&pattern, MatchKernel::Batched)];
        let set = BatchedMatch::with_sax_cuts(&plans, Some(breakpoints(8)));
        let at_match: Vec<_> = set
            .audit(&series)
            .into_iter()
            .filter(|r| r.position == at)
            .collect();
        // The embedded window may coincide with a σ = 0 window (audit
        // skips those), but when present its bounds must be ≈ 0.
        for row in at_match {
            let n = pattern.len() as f64;
            prop_assert!(row.lb_first_last <= 1e-6 * n, "tier 1 at match: {:.3e}", row.lb_first_last);
            if let Some(lb2) = row.lb_envelope {
                prop_assert!(lb2 <= 1e-6 * n, "tier 2 at match: {lb2:.3e}");
            }
        }
    }
}
