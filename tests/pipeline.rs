//! End-to-end integration tests: the full RPM pipeline over generated
//! datasets, exercised through the public facade.

use rpm::prelude::*;
use rpm_data::{generate, registry::spec_by_name, rotate_dataset};

fn quick_config(window: usize) -> RpmConfig {
    RpmConfig::fixed(SaxConfig::new(window, 4, 4))
}

#[test]
fn cbf_end_to_end_beats_chance_by_far() {
    let train = rpm::data::cbf::generate(10, 128, 1);
    let test = rpm::data::cbf::generate(30, 128, 2);
    let model = RpmClassifier::train(&train, &quick_config(32)).unwrap();
    let err = error_rate(&test.labels, &model.predict_batch(&test.series));
    // Chance is 2/3 for 3 classes; the paper reports ~0.002 on CBF.
    assert!(err < 0.15, "CBF error {err}");
}

#[test]
fn every_class_receives_a_prediction_in_range() {
    let train = rpm::data::control::synthetic_control(8, 60, 3);
    let test = rpm::data::control::synthetic_control(5, 60, 4);
    let model = RpmClassifier::train(&train, &quick_config(16)).unwrap();
    let preds = model.predict_batch(&test.series);
    for p in preds {
        assert!(p < 6, "prediction {p} outside label range");
    }
}

#[test]
fn gun_point_with_direct_search() {
    let spec = spec_by_name("GunPoint").unwrap();
    let (train, test) = generate(&spec, 7);
    let config = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 6,
            per_class: false,
        },
        n_validation_splits: 2,
        ..RpmConfig::default()
    };
    let model = RpmClassifier::train(&train, &config).unwrap();
    let err = error_rate(&test.labels, &model.predict_batch(&test.series));
    assert!(err < 0.2, "GunPoint error {err}");
}

#[test]
fn per_class_direct_search_trains() {
    let spec = spec_by_name("ItalyPowerDemand").unwrap();
    let (train, test) = generate(&spec, 9);
    let config = RpmConfig {
        param_search: ParamSearch::Direct {
            max_evals: 4,
            per_class: true,
        },
        n_validation_splits: 1,
        ..RpmConfig::default()
    };
    let model = RpmClassifier::train(&train, &config).unwrap();
    let err = error_rate(&test.labels, &model.predict_batch(&test.series));
    assert!(err < 0.35, "ItalyPowerDemand error {err}");
}

#[test]
fn rotation_invariant_model_survives_rotation() {
    let spec = spec_by_name("GunPoint").unwrap();
    let (train, test) = generate(&spec, 11);
    let rotated = rotate_dataset(&test, 5);

    let plain = RpmClassifier::train(&train, &quick_config(30)).unwrap();
    let invariant = RpmClassifier::train(
        &train,
        &RpmConfig {
            rotation_invariant: true,
            ..quick_config(30)
        },
    )
    .unwrap();

    let err_plain = error_rate(&rotated.labels, &plain.predict_batch(&rotated.series));
    let err_inv = error_rate(&rotated.labels, &invariant.predict_batch(&rotated.series));
    assert!(
        err_inv <= err_plain + 0.05,
        "rotation invariance should not hurt: {err_inv} vs {err_plain}"
    );
    assert!(err_inv < 0.25, "rotated error {err_inv}");
}

#[test]
fn patterns_are_class_specific_prototypes() {
    // The paper's core claim: each class gets its own pattern set.
    let train = rpm::data::cbf::generate(10, 128, 21);
    let model = RpmClassifier::train(&train, &quick_config(32)).unwrap();
    for p in model.patterns() {
        assert!(p.class < 3);
        assert!(p.frequency >= 2);
        assert!(p.coverage >= 2);
        assert!(!p.values.is_empty());
        assert!(p.values.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn ucr_roundtrip_then_train() {
    let dir = std::env::temp_dir().join("rpm_integration_ucr");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("CBF_TRAIN");
    let train = rpm::data::cbf::generate(10, 128, 31);
    rpm::data::ucr::write_ucr(&train, std::fs::File::create(&path).unwrap()).unwrap();
    let (reloaded, _) = rpm::data::ucr::read_ucr_file(&path).unwrap();
    assert_eq!(reloaded.len(), train.len());
    let model = RpmClassifier::train(&reloaded, &quick_config(32)).unwrap();
    assert!(!model.patterns().is_empty());
    std::fs::remove_file(path).ok();
}

#[test]
fn naive_and_rolling_kernels_train_equivalent_models() {
    // Kernel choice is an execution strategy, not a modeling decision: a
    // model trained with the naive oracle kernel must select the same
    // patterns (tolerance-aware — distances agree to 1e-9, not bitwise)
    // and classify identically to the default rolling-kernel model.
    use rpm::core::MatchKernel;
    let train = rpm::data::cbf::generate(10, 128, 71);
    let test = rpm::data::cbf::generate(30, 128, 72);

    let rolling = RpmClassifier::train(&train, &quick_config(32)).unwrap();
    let naive = RpmClassifier::train(
        &train,
        &RpmConfig {
            kernel: MatchKernel::Naive,
            ..quick_config(32)
        },
    )
    .unwrap();

    // Same representative-pattern set: count, class, and values.
    assert_eq!(rolling.patterns().len(), naive.patterns().len());
    for (r, n) in rolling.patterns().iter().zip(naive.patterns()) {
        assert_eq!(r.class, n.class);
        assert_eq!(r.values.len(), n.values.len());
        for (a, b) in r.values.iter().zip(&n.values) {
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "pattern values diverged: {a} vs {b}"
            );
        }
    }

    // Same predictions, hence identical accuracy.
    let preds_rolling = rolling.predict_batch(&test.series);
    let preds_naive = naive.predict_batch(&test.series);
    assert_eq!(preds_rolling, preds_naive);
    let err = error_rate(&test.labels, &preds_rolling);
    assert!(err < 0.15, "CBF error {err}");
}

#[test]
fn batched_and_rolling_kernels_train_bit_identical_models() {
    // Stronger than the naive comparison above: the batched cascade's
    // exact tier shares the rolling kernel's summation code verbatim and
    // every pruning tier is admissible, so a batched-kernel training run
    // must select **bit-identical** patterns (values compared with
    // `assert_eq!`, not a tolerance) and produce identical predictions.
    use rpm::core::MatchKernel;
    let train = rpm::data::cbf::generate(10, 128, 71);
    let test = rpm::data::cbf::generate(30, 128, 72);

    let rolling = RpmClassifier::train(
        &train,
        &RpmConfig {
            kernel: MatchKernel::Rolling,
            ..quick_config(32)
        },
    )
    .unwrap();
    let batched = RpmClassifier::train(
        &train,
        &RpmConfig {
            kernel: MatchKernel::Batched,
            ..quick_config(32)
        },
    )
    .unwrap();

    assert_eq!(rolling.patterns().len(), batched.patterns().len());
    for (r, b) in rolling.patterns().iter().zip(batched.patterns()) {
        assert_eq!(r.class, b.class);
        assert_eq!(r.values, b.values, "pattern values not bit-identical");
    }

    let preds_rolling = rolling.predict_batch(&test.series);
    let preds_batched = batched.predict_batch(&test.series);
    assert_eq!(preds_rolling, preds_batched);

    // The per-series feature rows agree bitwise too, not just the argmax.
    for s in test.series.iter().take(5) {
        let row_r = rolling.transform(s);
        let row_b = batched.transform(s);
        assert_eq!(row_r.len(), row_b.len());
        for (a, b) in row_r.iter().zip(&row_b) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "feature rows diverged: {a} vs {b}"
            );
        }
    }
}

#[test]
fn training_twice_is_deterministic() {
    let train = rpm::data::ecg::generate(12, 136, 41);
    let test = rpm::data::ecg::generate(10, 136, 42);
    let m1 = RpmClassifier::train(&train, &quick_config(28)).unwrap();
    let m2 = RpmClassifier::train(&train, &quick_config(28)).unwrap();
    assert_eq!(
        m1.predict_batch(&test.series),
        m2.predict_batch(&test.series)
    );
}

#[test]
fn medical_alarm_case_study_is_learnable() {
    let train = rpm::data::abp::generate(15, 400, 51);
    let test = rpm::data::abp::generate(20, 400, 52);
    let model = RpmClassifier::train(&train, &quick_config(50)).unwrap();
    let err = error_rate(&test.labels, &model.predict_batch(&test.series));
    assert!(err < 0.45, "ABP error {err} (chance = 0.5)");
}

#[test]
fn grid_and_direct_search_both_produce_working_models() {
    let spec = spec_by_name("ECGFiveDays").unwrap();
    let (train, test) = generate(&spec, 61);
    for search in [
        ParamSearch::Grid {
            windows: vec![20, 30],
            paas: vec![4],
            alphas: vec![4],
            per_class: false,
        },
        ParamSearch::Direct {
            max_evals: 5,
            per_class: false,
        },
    ] {
        let config = RpmConfig {
            param_search: search,
            n_validation_splits: 1,
            ..RpmConfig::default()
        };
        let model = RpmClassifier::train(&train, &config).unwrap();
        let err = error_rate(&test.labels, &model.predict_batch(&test.series));
        assert!(err < 0.35, "error {err}");
    }
}
