//! End-to-end acceptance tests for the classify server: a trained model
//! served over HTTP must answer concurrent clients with predictions
//! bit-identical to the offline `predict_batch` path, enforce request
//! deadlines with the documented `504` error code, shed overload with
//! `429`, refuse unverifiable (v1) models at startup, and survive an
//! armed request-path fault without dying.
//!
//! The fault plan is process-global, so the fault test serializes on
//! [`gate`] like `tests/resilience.rs` does.

use rpm::core::{RpmClassifier, RpmConfig};
use rpm::data::generate;
use rpm::data::registry::spec_by_name;
use rpm::sax::SaxConfig;
use rpm::serve::{load_verified, LoadConfig, ServeConfig, ServeError, Server};
use rpm::ts::Dataset;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn cbf() -> (Dataset, Dataset) {
    let mut spec = spec_by_name("CBF").expect("CBF registered");
    spec.train = 12;
    spec.test = 8;
    generate(&spec, 2016)
}

fn trained() -> (Arc<RpmClassifier>, Dataset) {
    let (train, test) = cbf();
    let config = RpmConfig::fixed(SaxConfig::new(32, 4, 4));
    let model = RpmClassifier::train(&train, &config).expect("train CBF");
    (Arc::new(model), test)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

fn jsonl_body(series: &[f64]) -> String {
    let rendered: Vec<String> = series.iter().map(|v| format!("{v}")).collect();
    format!("[{}]\n", rendered.join(","))
}

fn post(addr: std::net::SocketAddr, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "POST /classify HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn post_traced(addr: std::net::SocketAddr, body: &str, traceparent: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "POST /classify HTTP/1.0\r\nTraceparent: {traceparent}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn header_of<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    response.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

/// A sampled (forced-retention) traceparent with a recognizable,
/// per-test-unique trace id.
fn sampled_traceparent(tag: u32) -> (String, String) {
    let trace_hex = format!("{:032x}", 0xfeed_0000_u128 + tag as u128);
    let header = format!("00-{trace_hex}-00f067aa0ba902b7-01");
    (trace_hex, header)
}

fn label_of(response: &str) -> usize {
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");
    let tail = response
        .split("\"label\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no label in {response}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric label")
}

#[test]
fn concurrent_clients_match_offline_predictions_bit_for_bit() {
    let (model, test) = trained();
    let mut server = Server::start(Arc::clone(&model), &test_config()).expect("start");
    let addr = server.local_addr();

    let expected = model.predict_batch(&test.series);
    // Every test series from its own client thread, all in flight at
    // once, so replies cross micro-batch boundaries.
    let served: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = test
            .series
            .iter()
            .map(|series| {
                let body = jsonl_body(series);
                scope.spawn(move || label_of(&post(addr, &body)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(served, expected, "served labels must match offline batch");

    // The observability routes share the listener.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut metrics = String::new();
    stream.read_to_string(&mut metrics).unwrap();
    assert!(metrics.contains("rpm_serve_requests_total"), "{metrics}");
    server.shutdown();
}

#[test]
fn multi_series_requests_answer_in_order_with_ids() {
    let (model, test) = trained();
    let mut server = Server::start(Arc::clone(&model), &test_config()).expect("start");
    let addr = server.local_addr();

    let expected = model.predict_batch(&test.series[..3]);
    let body: String = test.series[..3]
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let rendered: Vec<String> = s.iter().map(|v| format!("{v}")).collect();
            format!(
                "{{\"id\":\"row-{i}\",\"series\":[{}]}}\n",
                rendered.join(",")
            )
        })
        .collect();
    let response = post(addr, &body);
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");
    for (i, label) in expected.iter().enumerate() {
        assert!(
            response.contains(&format!("{{\"id\":\"row-{i}\",\"label\":{label}}}")),
            "row {i}: {response}"
        );
    }
    server.shutdown();
}

#[test]
fn expired_deadlines_answer_the_documented_504_code() {
    let (model, test) = trained();
    let config = ServeConfig {
        deadline: Duration::from_millis(0),
        // A wide window holds the batch open past the (zero) deadline,
        // so the worker-side gate is what answers.
        batch_window: Duration::from_millis(150),
        max_batch: 10_000,
        ..test_config()
    };
    let mut server = Server::start(Arc::clone(&model), &config).expect("start");
    let response = post(server.local_addr(), &jsonl_body(&test.series[0]));
    assert!(response.starts_with("HTTP/1.0 504"), "{response}");
    assert!(response.contains("\"deadline_exceeded\""), "{response}");
    server.shutdown();
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    let (model, test) = trained();
    let config = ServeConfig {
        // One worker holding batches open, a one-series queue: the
        // second concurrent request must shed.
        workers: 1,
        queue_depth: 1,
        max_batch: 1,
        batch_window: Duration::from_millis(200),
        ..test_config()
    };
    let mut server = Server::start(Arc::clone(&model), &config).expect("start");
    let addr = server.local_addr();
    let body = jsonl_body(&test.series[0]);

    // Saturate with concurrent clients; at least one must be shed and
    // sheds must carry Retry-After.
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || post(addr, &body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shed: Vec<&String> = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.0 429"))
        .collect();
    assert!(!shed.is_empty(), "expected sheds, got: {responses:?}");
    for r in &shed {
        assert!(r.contains("Retry-After: 1"), "{r}");
        assert!(r.contains("\"overloaded\""), "{r}");
        // Even sheds carry the trace identity headers.
        assert!(header_of(r, "X-Request-Id").is_some(), "{r}");
        assert!(header_of(r, "Traceparent").is_some(), "{r}");
    }
    server.shutdown();
}

#[test]
fn v1_models_are_refused_without_allow_unverified() {
    let (model, _) = trained();
    let mut v1 = Vec::new();
    model.save_v1(&mut v1).expect("save v1");
    match load_verified(&v1, false) {
        Err(ServeError::Unverified(report)) => assert_eq!(report.version, 1),
        other => panic!("expected Unverified, got {:?}", other.map(|_| "loaded")),
    }
    let (loaded, report) = load_verified(&v1, true).expect("explicit opt-in loads v1");
    assert_eq!(report.version, 1);
    // The opted-in model still predicts.
    let (_, test) = cbf();
    assert_eq!(
        loaded.predict_batch(&test.series),
        model.predict_batch(&test.series)
    );
}

#[test]
fn armed_request_fault_degrades_to_an_error_response_not_a_crash() {
    let _g = gate();
    let (model, test) = trained();
    let mut server = Server::start(Arc::clone(&model), &test_config()).expect("start");
    let addr = server.local_addr();
    let body = jsonl_body(&test.series[0]);

    rpm::obs::fault::install(rpm::obs::fault::parse("serve.request:io:1:0").expect("spec"));
    let faulted = post(addr, &body);
    rpm::obs::fault::clear();
    assert!(faulted.starts_with("HTTP/1.0 500"), "{faulted}");
    assert!(faulted.contains("\"internal\""), "{faulted}");

    // The server survived: the same request now answers normally, and
    // so does the batch-site fault once disarmed.
    let healthy = post(addr, &body);
    assert!(healthy.starts_with("HTTP/1.0 200"), "{healthy}");

    rpm::obs::fault::install(rpm::obs::fault::parse("serve.batch:io:1:0").expect("spec"));
    let faulted = post(addr, &body);
    rpm::obs::fault::clear();
    assert!(faulted.starts_with("HTTP/1.0 500"), "{faulted}");

    let healthy = post(addr, &body);
    assert!(healthy.starts_with("HTTP/1.0 200"), "{healthy}");
    server.shutdown();
}

/// Duration of the named span inside one `/debug/traces` JSONL line.
/// Span objects render `name` before `dur_ns`, so the first `dur_ns`
/// after the name belongs to that span.
fn span_dur(trace_line: &str, name: &str) -> Option<u64> {
    let tail = trace_line.split(&format!("\"name\":\"{name}\"")).nth(1)?;
    let tail = tail.split("\"dur_ns\":").nth(1)?;
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

/// Wall time of the whole trace (the trace-level `dur_ns`, which
/// renders before the `spans` array).
fn trace_dur(trace_line: &str) -> u64 {
    let head = trace_line.split("\"spans\":[").next().expect("head");
    head.split("\"dur_ns\":")
        .nth(1)
        .expect("trace dur_ns")
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric dur")
}

#[test]
fn deadline_miss_leaves_a_retained_trace_with_queue_wait() {
    let (model, test) = trained();
    let config = ServeConfig {
        // deadline < batch_window < deadline + 50ms handler grace: the
        // worker-side deadline gate answers (pushing the queue_wait
        // span first) before the handler's own timeout gives up.
        deadline: Duration::from_millis(150),
        batch_window: Duration::from_millis(160),
        max_batch: 10_000,
        ..test_config()
    };
    let mut server = Server::start(Arc::clone(&model), &config).expect("start");
    let addr = server.local_addr();
    let (trace_hex, traceparent) = sampled_traceparent(0x5104);

    let response = post_traced(addr, &jsonl_body(&test.series[0]), &traceparent);
    assert!(response.starts_with("HTTP/1.0 504"), "{response}");
    // The inbound trace identity comes back on the failure response.
    assert_eq!(
        header_of(&response, "X-Request-Id"),
        Some(trace_hex.as_str())
    );
    let echoed = header_of(&response, "Traceparent").expect("traceparent echoed");
    assert!(echoed.starts_with(&format!("00-{trace_hex}-")), "{echoed}");
    assert!(echoed.ends_with("-01"), "sampled flag preserved: {echoed}");

    // The flight recorder retained the trace (deadline outcome and the
    // sampled flag each force retention), and it shows where the time
    // went: waiting in the queue, never reaching predict.
    let traces = get(addr, "/debug/traces?outcome=deadline");
    let line = traces
        .lines()
        .find(|l| l.contains(&trace_hex))
        .unwrap_or_else(|| panic!("no retained trace for {trace_hex} in:\n{traces}"));
    assert!(
        line.contains("\"outcome\":\"deadline\",\"status\":504"),
        "{line}"
    );
    let waited = span_dur(line, "queue_wait").expect("queue_wait span");
    assert!(waited > 0, "queue wait must be nonzero: {line}");
    assert!(waited <= trace_dur(line), "span outlives trace: {line}");
    assert!(
        span_dur(line, "predict").is_none(),
        "an expired request must not reach predict: {line}"
    );
    // The wall-time filter sees the ~160ms the request spent queued.
    assert!(get(addr, "/debug/traces?min_ms=100").contains(&trace_hex));
    assert!(!get(addr, "/debug/traces?min_ms=60000").contains(&trace_hex));
    server.shutdown();
}

#[test]
fn bad_requests_still_carry_trace_identity() {
    let (model, _) = trained();
    let mut server = Server::start(Arc::clone(&model), &test_config()).expect("start");
    let addr = server.local_addr();

    let (trace_hex, traceparent) = sampled_traceparent(0x0bad);
    let response = post_traced(addr, "not json\n", &traceparent);
    assert!(response.starts_with("HTTP/1.0 400"), "{response}");
    assert_eq!(
        header_of(&response, "X-Request-Id"),
        Some(trace_hex.as_str())
    );

    // A malformed traceparent is not an error: the server falls back to
    // a freshly generated id instead of echoing garbage.
    let response = post_traced(addr, "not json\n", "garbage-not-a-traceparent");
    assert!(response.starts_with("HTTP/1.0 400"), "{response}");
    let generated = header_of(&response, "X-Request-Id").expect("generated id");
    assert_eq!(generated.len(), 32, "{generated}");
    assert!(
        generated.chars().all(|c| c.is_ascii_hexdigit()),
        "{generated}"
    );
    server.shutdown();
}

#[test]
fn concurrent_traces_share_a_batch_and_exemplars_resolve() {
    let (model, test) = trained();
    let config = ServeConfig {
        // One worker and a wide window force the concurrent requests
        // into a single micro-batch.
        workers: 1,
        max_batch: 10_000,
        batch_window: Duration::from_millis(300),
        ..test_config()
    };
    let mut server = Server::start(Arc::clone(&model), &config).expect("start");
    let addr = server.local_addr();

    let parents: Vec<(String, String)> = (0..4).map(|i| sampled_traceparent(0xba7c + i)).collect();
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = parents
            .iter()
            .zip(&test.series)
            .map(|((_, header), series)| {
                let body = jsonl_body(series);
                scope.spawn(move || post_traced(addr, &body, header))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (response, (trace_hex, _)) in responses.iter().zip(&parents) {
        assert!(response.starts_with("HTTP/1.0 200"), "{response}");
        assert_eq!(
            header_of(response, "X-Request-Id"),
            Some(trace_hex.as_str())
        );
    }

    let traces = get(addr, "/debug/traces");
    let lines: Vec<&str> = parents
        .iter()
        .map(|(hex, _)| {
            traces
                .lines()
                .find(|l| l.contains(&format!("\"trace_id\":\"{hex}\"")))
                .unwrap_or_else(|| panic!("sampled trace {hex} not retained in:\n{traces}"))
        })
        .collect();

    // Every request trace carries the full span tree, the spans fit
    // inside the request's wall time, and the kernel counters rode
    // along as predict-span attributes.
    for line in &lines {
        let total = trace_dur(line);
        for span in ["parse", "queue_wait", "batch", "predict", "respond"] {
            let dur = span_dur(line, span).unwrap_or_else(|| panic!("no {span} span in: {line}"));
            assert!(
                dur <= total,
                "{span} ({dur}ns) exceeds trace ({total}ns): {line}"
            );
        }
        let waited = span_dur(line, "queue_wait").unwrap();
        let predicted = span_dur(line, "predict").unwrap();
        assert!(
            waited + predicted <= total,
            "queue_wait + predict ({waited} + {predicted}) exceed wall time {total}: {line}"
        );
        assert!(line.contains("\"searches\":\""), "{line}");
        assert!(line.contains("\"windows\":\""), "{line}");
        assert!(line.contains("\"abandon_rate\":\""), "{line}");
    }

    // The shared batch span makes the causality explicit: the first
    // request's batch span links the sibling traces it was served with.
    let siblings_linked = parents[1..]
        .iter()
        .filter(|(hex, _)| lines[0].contains(hex.as_str()))
        .count();
    assert!(
        siblings_linked >= 2,
        "batch span should link >=2 sibling traces, linked {siblings_linked}: {}",
        lines[0]
    );

    // Exemplar trace ids on /metrics resolve against the recorder: any
    // `# {trace_id="..."}` annotation points at a retained trace.
    let metrics = get(addr, "/metrics");
    let exemplar_ids: Vec<&str> = metrics
        .lines()
        .filter_map(|l| l.split("# {trace_id=\"").nth(1))
        .filter_map(|t| t.split('"').next())
        .collect();
    assert!(
        !exemplar_ids.is_empty(),
        "no exemplars on /metrics:\n{metrics}"
    );
    let all_traces = get(addr, "/debug/traces");
    for id in &exemplar_ids {
        assert!(
            all_traces.contains(*id),
            "exemplar {id} does not resolve against /debug/traces"
        );
    }
    server.shutdown();
}

#[test]
fn loadgen_reports_against_a_live_server() {
    let (model, test) = trained();
    let mut server = Server::start(Arc::clone(&model), &test_config()).expect("start");
    let report = rpm::serve::run_load(&LoadConfig {
        addr: server.local_addr(),
        qps: 40.0,
        duration: Duration::from_millis(500),
        senders: 4,
        bodies: vec![jsonl_body(&test.series[0])],
    });
    assert!(report.sent > 0);
    assert_eq!(
        report.sent,
        report.ok + report.shed + report.deadline + report.errors
    );
    assert!(report.ok > 0, "{report:?}");
    assert!(report.p99_ms >= report.p50_ms, "{report:?}");
    server.shutdown();
}
