//! End-to-end acceptance tests for the classify server: a trained model
//! served over HTTP must answer concurrent clients with predictions
//! bit-identical to the offline `predict_batch` path, enforce request
//! deadlines with the documented `504` error code, shed overload with
//! `429`, refuse unverifiable (v1) models at startup, and survive an
//! armed request-path fault without dying.
//!
//! The fault plan is process-global, so the fault test serializes on
//! [`gate`] like `tests/resilience.rs` does.

use rpm::core::{RpmClassifier, RpmConfig};
use rpm::data::generate;
use rpm::data::registry::spec_by_name;
use rpm::sax::SaxConfig;
use rpm::serve::{load_verified, LoadConfig, ServeConfig, ServeError, Server};
use rpm::ts::Dataset;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn cbf() -> (Dataset, Dataset) {
    let mut spec = spec_by_name("CBF").expect("CBF registered");
    spec.train = 12;
    spec.test = 8;
    generate(&spec, 2016)
}

fn trained() -> (Arc<RpmClassifier>, Dataset) {
    let (train, test) = cbf();
    let config = RpmConfig::fixed(SaxConfig::new(32, 4, 4));
    let model = RpmClassifier::train(&train, &config).expect("train CBF");
    (Arc::new(model), test)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

fn jsonl_body(series: &[f64]) -> String {
    let rendered: Vec<String> = series.iter().map(|v| format!("{v}")).collect();
    format!("[{}]\n", rendered.join(","))
}

fn post(addr: std::net::SocketAddr, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "POST /classify HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn label_of(response: &str) -> usize {
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");
    let tail = response
        .split("\"label\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no label in {response}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric label")
}

#[test]
fn concurrent_clients_match_offline_predictions_bit_for_bit() {
    let (model, test) = trained();
    let mut server = Server::start(Arc::clone(&model), &test_config()).expect("start");
    let addr = server.local_addr();

    let expected = model.predict_batch(&test.series);
    // Every test series from its own client thread, all in flight at
    // once, so replies cross micro-batch boundaries.
    let served: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = test
            .series
            .iter()
            .map(|series| {
                let body = jsonl_body(series);
                scope.spawn(move || label_of(&post(addr, &body)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(served, expected, "served labels must match offline batch");

    // The observability routes share the listener.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut metrics = String::new();
    stream.read_to_string(&mut metrics).unwrap();
    assert!(metrics.contains("rpm_serve_requests_total"), "{metrics}");
    server.shutdown();
}

#[test]
fn multi_series_requests_answer_in_order_with_ids() {
    let (model, test) = trained();
    let mut server = Server::start(Arc::clone(&model), &test_config()).expect("start");
    let addr = server.local_addr();

    let expected = model.predict_batch(&test.series[..3]);
    let body: String = test.series[..3]
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let rendered: Vec<String> = s.iter().map(|v| format!("{v}")).collect();
            format!(
                "{{\"id\":\"row-{i}\",\"series\":[{}]}}\n",
                rendered.join(",")
            )
        })
        .collect();
    let response = post(addr, &body);
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");
    for (i, label) in expected.iter().enumerate() {
        assert!(
            response.contains(&format!("{{\"id\":\"row-{i}\",\"label\":{label}}}")),
            "row {i}: {response}"
        );
    }
    server.shutdown();
}

#[test]
fn expired_deadlines_answer_the_documented_504_code() {
    let (model, test) = trained();
    let config = ServeConfig {
        deadline: Duration::from_millis(0),
        // A wide window holds the batch open past the (zero) deadline,
        // so the worker-side gate is what answers.
        batch_window: Duration::from_millis(150),
        max_batch: 10_000,
        ..test_config()
    };
    let mut server = Server::start(Arc::clone(&model), &config).expect("start");
    let response = post(server.local_addr(), &jsonl_body(&test.series[0]));
    assert!(response.starts_with("HTTP/1.0 504"), "{response}");
    assert!(response.contains("\"deadline_exceeded\""), "{response}");
    server.shutdown();
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    let (model, test) = trained();
    let config = ServeConfig {
        // One worker holding batches open, a one-series queue: the
        // second concurrent request must shed.
        workers: 1,
        queue_depth: 1,
        max_batch: 1,
        batch_window: Duration::from_millis(200),
        ..test_config()
    };
    let mut server = Server::start(Arc::clone(&model), &config).expect("start");
    let addr = server.local_addr();
    let body = jsonl_body(&test.series[0]);

    // Saturate with concurrent clients; at least one must be shed and
    // sheds must carry Retry-After.
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || post(addr, &body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let shed: Vec<&String> = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.0 429"))
        .collect();
    assert!(!shed.is_empty(), "expected sheds, got: {responses:?}");
    for r in &shed {
        assert!(r.contains("Retry-After: 1"), "{r}");
        assert!(r.contains("\"overloaded\""), "{r}");
    }
    server.shutdown();
}

#[test]
fn v1_models_are_refused_without_allow_unverified() {
    let (model, _) = trained();
    let mut v1 = Vec::new();
    model.save_v1(&mut v1).expect("save v1");
    match load_verified(&v1, false) {
        Err(ServeError::Unverified(report)) => assert_eq!(report.version, 1),
        other => panic!("expected Unverified, got {:?}", other.map(|_| "loaded")),
    }
    let (loaded, report) = load_verified(&v1, true).expect("explicit opt-in loads v1");
    assert_eq!(report.version, 1);
    // The opted-in model still predicts.
    let (_, test) = cbf();
    assert_eq!(
        loaded.predict_batch(&test.series),
        model.predict_batch(&test.series)
    );
}

#[test]
fn armed_request_fault_degrades_to_an_error_response_not_a_crash() {
    let _g = gate();
    let (model, test) = trained();
    let mut server = Server::start(Arc::clone(&model), &test_config()).expect("start");
    let addr = server.local_addr();
    let body = jsonl_body(&test.series[0]);

    rpm::obs::fault::install(rpm::obs::fault::parse("serve.request:io:1:0").expect("spec"));
    let faulted = post(addr, &body);
    rpm::obs::fault::clear();
    assert!(faulted.starts_with("HTTP/1.0 500"), "{faulted}");
    assert!(faulted.contains("\"internal\""), "{faulted}");

    // The server survived: the same request now answers normally, and
    // so does the batch-site fault once disarmed.
    let healthy = post(addr, &body);
    assert!(healthy.starts_with("HTTP/1.0 200"), "{healthy}");

    rpm::obs::fault::install(rpm::obs::fault::parse("serve.batch:io:1:0").expect("spec"));
    let faulted = post(addr, &body);
    rpm::obs::fault::clear();
    assert!(faulted.starts_with("HTTP/1.0 500"), "{faulted}");

    let healthy = post(addr, &body);
    assert!(healthy.starts_with("HTTP/1.0 200"), "{healthy}");
    server.shutdown();
}

#[test]
fn loadgen_reports_against_a_live_server() {
    let (model, test) = trained();
    let mut server = Server::start(Arc::clone(&model), &test_config()).expect("start");
    let report = rpm::serve::run_load(&LoadConfig {
        addr: server.local_addr(),
        qps: 40.0,
        duration: Duration::from_millis(500),
        senders: 4,
        body: jsonl_body(&test.series[0]),
    });
    assert!(report.sent > 0);
    assert_eq!(
        report.sent,
        report.ok + report.shed + report.deadline + report.errors
    );
    assert!(report.ok > 0, "{report:?}");
    assert!(report.p99_ms >= report.p50_ms, "{report:?}");
    server.shutdown();
}
