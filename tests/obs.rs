//! Observability acceptance tests: instrumentation must never change
//! results (instrumented parallel training stays bit-identical to serial),
//! metric totals must be consistent across thread counts, and the span
//! tree must obey its nesting/ordering invariants.
//!
//! The recording level is a process-wide global, so every test serializes
//! on [`gate`].

use rpm::obs::{ObsConfig, ObsLevel};
use rpm::prelude::*;
use rpm_data::{generate, registry::spec_by_name};
use std::sync::{Mutex, MutexGuard};

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Drains any state left over from a previous test in this binary.
fn reset() {
    ObsConfig {
        level: ObsLevel::Spans,
        json_path: None,
        http_addr: None,
    }
    .install();
    rpm::obs::finish();
    ObsConfig::default().install();
}

/// One run's comparison key: model bytes, predictions, counter totals,
/// and the cache-lookup total.
type RunFingerprint = (Vec<u8>, Vec<usize>, Vec<(String, u64)>, u64);

fn small_cbf() -> (Dataset, Dataset) {
    let mut spec = spec_by_name("CBF").unwrap();
    spec.train = 15;
    spec.test = 12;
    generate(&spec, 2016)
}

/// Training with observability on at 1/4/8 threads: identical serialized
/// model bytes and predictions, and identical totals for every
/// scheduling-independent counter (engine jobs, cache lookups, candidate
/// counts). Only the hit/miss split within a cache family may vary with
/// scheduling; the lookup total may not.
#[test]
fn instrumented_training_is_deterministic_across_thread_counts() {
    let _g = gate();
    reset();
    let (train, test) = small_cbf();

    let mut baseline: Option<RunFingerprint> = None;
    for threads in [1usize, 4, 8] {
        ObsConfig {
            level: ObsLevel::Spans,
            json_path: None,
            http_addr: None,
        }
        .install();
        let config = RpmConfig {
            n_threads: threads,
            ..RpmConfig::fixed(SaxConfig::new(32, 4, 4))
        };
        let model = RpmClassifier::train(&train, &config).unwrap();
        let preds = model.predict_batch(&test.series);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();

        let report = rpm::obs::finish().expect("observability is on");
        ObsConfig::default().install();

        let watched = [
            "engine.runs",
            "engine.jobs",
            "mine.rules",
            "mine.candidates",
            "prune.pool_in",
            "prune.kept",
            "cfs.features_in",
            "cfs.survivors",
            "transform.columns",
            "predict.series",
            "ml.svm_trains",
            "ml.cfs_runs",
        ];
        let counters: Vec<(String, u64)> = watched
            .iter()
            .map(|&name| (name.to_string(), report.metrics.counter(name).unwrap_or(0)))
            .collect();
        let (lookups, hits) = report.metrics.cache_totals();
        assert!(hits <= lookups);
        assert!(
            report.metrics.counter("engine.jobs").unwrap_or(0) > 0,
            "engine jobs must be recorded"
        );

        match &baseline {
            None => baseline = Some((bytes, preds, counters, lookups)),
            Some((b_bytes, b_preds, b_counters, b_lookups)) => {
                assert_eq!(b_bytes, &bytes, "model bytes differ at {threads} threads");
                assert_eq!(b_preds, &preds, "predictions differ at {threads} threads");
                assert_eq!(
                    b_counters, &counters,
                    "counter totals differ at {threads} threads"
                );
                assert_eq!(
                    *b_lookups, lookups,
                    "cache lookup totals differ at {threads} threads"
                );
            }
        }
    }
}

/// Span records obey the structural invariants: depth equals the path
/// segment count minus one, children nest inside their parent's window on
/// the same thread, records come back sorted by start time, and every
/// span ends within the report's wall time.
#[test]
fn span_nesting_and_ordering_invariants_hold() {
    let _g = gate();
    reset();
    ObsConfig {
        level: ObsLevel::Spans,
        json_path: None,
        http_addr: None,
    }
    .install();
    {
        let _train = rpm::obs::span!("train");
        {
            let _mine = rpm::obs::span!("mine");
            let _cfs = rpm::obs::span!("cfs");
        }
        let _svm = rpm::obs::span!("svm");
    }
    let report = rpm::obs::finish().expect("observability is on");
    ObsConfig::default().install();

    let paths: Vec<&str> = report.records.iter().map(|r| r.path.as_str()).collect();
    assert_eq!(
        paths,
        ["train", "train/mine", "train/mine/cfs", "train/svm"]
    );

    for pair in report.records.windows(2) {
        assert!(
            pair[0].start_ns <= pair[1].start_ns,
            "records must be sorted by start time"
        );
    }
    for r in &report.records {
        assert_eq!(r.depth as usize, r.path.matches('/').count(), "{}", r.path);
        assert!(r.start_ns + r.dur_ns <= report.wall_ns);
        let parent_path = match r.path.rfind('/') {
            Some(i) => &r.path[..i],
            None => continue,
        };
        let parent = report
            .records
            .iter()
            .find(|p| p.path == parent_path)
            .expect("parent span exists");
        assert_eq!(parent.thread, r.thread, "nesting is per-thread");
        assert!(parent.start_ns <= r.start_ns, "{}", r.path);
        assert!(
            r.start_ns + r.dur_ns <= parent.start_ns + parent.dur_ns,
            "child {} must end within its parent",
            r.path
        );
    }

    // Stage aggregates mirror the records.
    assert_eq!(report.stages.len(), 4);
    for s in &report.stages {
        assert_eq!(s.calls, 1);
        assert!(s.total_ns <= report.wall_ns);
    }
}

/// With observability off, probes are inert: no spans, no counter
/// movement, and `finish` has nothing to report.
#[test]
fn disabled_probes_record_nothing() {
    let _g = gate();
    reset();
    assert_eq!(rpm::obs::level(), ObsLevel::Off);
    let before = rpm::obs::metrics().engine_jobs.get();
    {
        let _span = rpm::obs::span!("ghost");
        rpm::obs::metrics().engine_jobs.add(17);
    }
    assert_eq!(rpm::obs::metrics().engine_jobs.get(), before);
    assert!(rpm::obs::finish().is_none());
}
