//! # rpm — Representative Pattern Mining for time series classification
//!
//! A from-scratch Rust reproduction of *Wang, Lin, Senin, Oates, Gandhi,
//! Boedihardjo, Chen, Frankenstein: "RPM: Representative Pattern Mining
//! for Efficient Time Series Classification", EDBT 2016*.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`core`] — the RPM classifier itself,
//! * [`ts`] — time series primitives,
//! * [`sax`] — SAX discretization,
//! * [`grammar`] — Sequitur grammar induction,
//! * [`cluster`] — hierarchical/bisection/k-means clustering,
//! * [`ml`] — SVM, CFS, metrics, cross-validation, Wilcoxon,
//! * [`obs`] — spans, metrics, and structured run reports,
//! * [`opt`] — DIRECT and grid search,
//! * [`data`] — dataset generators and UCR I/O,
//! * [`baselines`] — the five comparison classifiers,
//! * [`serve`] — the concurrent classify server with micro-batching.
//!
//! ## Quickstart
//!
//! ```
//! use rpm::prelude::*;
//!
//! // Generate a CBF dataset (the paper's Fig. 2 example).
//! let train = rpm::data::cbf::generate(10, 128, 1);
//! let test = rpm::data::cbf::generate(20, 128, 2);
//!
//! // Train with fixed SAX parameters (window 32, PAA 4, alphabet 4).
//! let config = RpmConfig::fixed(SaxConfig::new(32, 4, 4));
//! let model = RpmClassifier::train(&train, &config).unwrap();
//!
//! let predictions = model.predict_batch(&test.series);
//! let err = error_rate(&test.labels, &predictions);
//! assert!(err < 0.4, "error rate {err}");
//! ```

pub use rpm_baselines as baselines;
pub use rpm_cluster as cluster;
pub use rpm_core as core;
pub use rpm_data as data;
pub use rpm_grammar as grammar;
pub use rpm_ml as ml;
pub use rpm_obs as obs;
pub use rpm_opt as opt;
pub use rpm_sax as sax;
pub use rpm_serve as serve;
pub use rpm_ts as ts;

/// The names most programs need.
pub mod prelude {
    pub use rpm_core::{
        ConfigError, ParamSearch, Pattern, RpmClassifier, RpmConfig, RpmConfigBuilder, TrainError,
    };
    pub use rpm_ml::{error_rate, macro_f1};
    pub use rpm_sax::SaxConfig;
    pub use rpm_ts::{Classifier, Dataset, Label};
}
