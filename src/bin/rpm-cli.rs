//! `rpm-cli` — train, persist, and apply RPM models on UCR-format files.
//!
//! ```text
//! rpm-cli train <TRAIN_FILE> --model <OUT> [--window W --paa P --alpha A]
//!                                          [--direct N] [--gamma G]
//!                                          [--rotation-invariant]
//! rpm-cli classify <MODEL> <TEST_FILE>     # prints predictions + error
//! rpm-cli patterns <MODEL>                 # prints the learned patterns
//! rpm-cli motifs <SERIES_FILE> [--window W --paa P --alpha A]
//!                                          # exploratory motifs/discords
//! rpm-cli generate <DATASET> <OUT_PREFIX>  # writes <PREFIX>_TRAIN/_TEST
//! ```
//!
//! Files use the UCR archive format: one series per line, class label
//! first, comma- or whitespace-separated.

use rpm::core::{discover_motifs, find_discords, ParamSearch, RpmClassifier, RpmConfig};
use rpm::data::registry::spec_by_name;
use rpm::data::ucr::{read_ucr_file, write_ucr};
use rpm::ml::error_rate;
use rpm::sax::SaxConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    rpm::obs::init_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("patterns") => cmd_patterns(&args[1..]),
        Some("motifs") => cmd_motifs(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        _ => {
            eprintln!("usage: rpm-cli <train|classify|patterns|motifs|generate> ...");
            eprintln!("see the crate docs (src/bin/rpm-cli.rs) for full usage");
            return ExitCode::from(2);
        }
    };
    let code = match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    };
    // Stage tree to stderr + optional JSONL report when RPM_LOG is set.
    rpm::obs::finish();
    code
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Pulls `--flag value` out of the argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn positional(args: &[String], index: usize) -> Result<&String, String> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // A value following a --flag is not positional.
            let pos = args.iter().position(|x| x == *a).unwrap();
            pos == 0 || !args[pos - 1].starts_with("--")
        })
        .nth(index)
        .ok_or_else(|| format!("missing positional argument #{index}"))
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v.parse::<T>().map(Some).map_err(|e| format!("{flag}: {e}")),
    }
}

fn sax_from_flags(args: &[String], default_len: usize) -> Result<SaxConfig, String> {
    let window = parse_flag::<usize>(args, "--window")?.unwrap_or((default_len / 4).max(4));
    let paa = parse_flag::<usize>(args, "--paa")?.unwrap_or(4);
    let alpha = parse_flag::<usize>(args, "--alpha")?.unwrap_or(4);
    Ok(SaxConfig::new(window, paa.min(window), alpha))
}

fn cmd_train(args: &[String]) -> CliResult {
    let train_path = positional(args, 0)?;
    let model_path = flag_value(args, "--model").ok_or("train requires --model <OUT>")?;
    let (train, _) = read_ucr_file(train_path)?;
    eprintln!("loaded {train}");

    let param_search = if let Some(n) = parse_flag::<usize>(args, "--direct")? {
        ParamSearch::Direct {
            max_evals: n,
            per_class: flag_present(args, "--per-class"),
        }
    } else if flag_present(args, "--window") {
        ParamSearch::Fixed(sax_from_flags(args, train.min_len())?)
    } else {
        ParamSearch::Direct {
            max_evals: 12,
            per_class: false,
        }
    };
    let config = RpmConfig {
        param_search,
        gamma: parse_flag::<f64>(args, "--gamma")?.unwrap_or(0.2),
        rotation_invariant: flag_present(args, "--rotation-invariant"),
        ..RpmConfig::default()
    };
    let model = RpmClassifier::train(&train, &config)?;
    eprintln!("learned {} representative patterns", model.patterns().len());
    eprintln!("training cache: {}", model.cache_stats());
    model.save(std::fs::File::create(&model_path)?)?;
    eprintln!("model written to {model_path}");
    Ok(())
}

fn cmd_classify(args: &[String]) -> CliResult {
    let model_path = positional(args, 0)?;
    let test_path = positional(args, 1)?;
    let model = RpmClassifier::load(std::fs::File::open(model_path)?)?;
    let (test, _) = read_ucr_file(test_path)?;
    let preds = model.predict_batch(&test.series);
    for p in &preds {
        println!("{p}");
    }
    eprintln!("error rate: {:.4}", error_rate(&test.labels, &preds));
    Ok(())
}

fn cmd_patterns(args: &[String]) -> CliResult {
    let model_path = positional(args, 0)?;
    let model = RpmClassifier::load(std::fs::File::open(model_path)?)?;
    println!("class,length,frequency,coverage,window,paa,alphabet");
    for p in model.patterns() {
        println!(
            "{},{},{},{},{},{},{}",
            p.class,
            p.values.len(),
            p.frequency,
            p.coverage,
            p.sax.window,
            p.sax.paa_size,
            p.sax.alphabet
        );
    }
    Ok(())
}

fn cmd_motifs(args: &[String]) -> CliResult {
    let series_path = positional(args, 0)?;
    let (data, _) = read_ucr_file(series_path)?;
    let series = data.series.first().ok_or("series file is empty")?;
    let sax = sax_from_flags(args, series.len())?;
    let motifs = discover_motifs(series, &sax);
    println!("top motifs (count, word length, first occurrences):");
    for m in motifs.iter().take(10) {
        let occ: Vec<String> = m
            .occurrences
            .iter()
            .take(5)
            .map(|(s, e)| format!("[{s},{e})"))
            .collect();
        println!(
            "  x{:<4} {:>3} words  {}",
            m.count(),
            m.rule_words,
            occ.join(" ")
        );
    }
    let discords = find_discords(series, &sax, 3);
    println!("top discords (position, length, coverage):");
    for d in discords {
        println!(
            "  @{:<6} len {:<5} coverage {:.2}",
            d.position, d.length, d.coverage
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> CliResult {
    let name = positional(args, 0)?;
    let prefix = positional(args, 1)?;
    let spec = spec_by_name(name).ok_or_else(|| {
        let names: Vec<&str> = rpm::data::suite().iter().map(|s| s.name).collect();
        format!("unknown dataset {name:?}; available: {}", names.join(", "))
    })?;
    let seed = parse_flag::<u64>(args, "--seed")?.unwrap_or(2016);
    let (train, test) = rpm::data::generate(&spec, seed);
    write_ucr(&train, std::fs::File::create(format!("{prefix}_TRAIN"))?)?;
    write_ucr(&test, std::fs::File::create(format!("{prefix}_TEST"))?)?;
    eprintln!(
        "wrote {prefix}_TRAIN ({}) and {prefix}_TEST ({})",
        train.len(),
        test.len()
    );
    Ok(())
}
