//! `rpm-cli` — train, persist, and apply RPM models on UCR-format files.
//!
//! ```text
//! rpm-cli train <TRAIN_FILE> --model <OUT> [--window W --paa P --alpha A]
//!                                          [--direct N] [--gamma G]
//!                                          [--rotation-invariant]
//!         [--checkpoint PATH]              # resume parameter search
//!         [--budget-evals N]               # stop after N fresh evals
//!         [--budget-secs S]                # stop after S seconds
//!         [--kernel batched|rolling|naive]  # closest-match kernel (ablation)
//! rpm-cli classify <MODEL> <TEST_FILE>     # prints predictions + error
//!         [--metrics-addr HOST:PORT]       # serve Prometheus /metrics
//!         [--metrics-linger SECS]          # keep serving after classify
//! rpm-cli model verify <MODEL>             # checksum + structure check
//! rpm-cli serve <MODEL> [--addr HOST:PORT] # HTTP/JSONL classify server
//!         [--workers N] [--batch-max N]    # micro-batching worker pool
//!         [--batch-window-ms MS]           # flush window per batch
//!         [--queue-depth N]                # series queued before 429
//!         [--deadline-ms MS]               # per-request deadline (504)
//!         [--threads N]                    # per-batch predict threads
//!         [--allow-unverified]             # accept v1 (no-checksum) models
//!         [--duration-secs S]              # serve S seconds, then exit
//!         [--drift-warn PSI]               # drift warn threshold
//!         [--drift-page PSI]               # drift page threshold (degraded
//!                                          # /healthz; env RPM_DRIFT_WARN /
//!                                          # RPM_DRIFT_PAGE also accepted)
//!         [--drift-min-samples N]          # live samples before scoring
//!         [--reload-canary PSI]            # canary-gate divergence bound
//!         [--probation-secs S]             # auto-rollback watch window
//!         [--max-body-kb N]                # /classify body cap (413)
//!                                          # SIGHUP hot-reloads the model
//!                                          # file; SIGTERM/SIGINT drain
//! rpm-cli serve reload <ADDR> [--model P]  # hot-reload a running server
//! rpm-cli serve rollback <ADDR>            # swap back to previous model
//! rpm-cli load-gen <ADDR> <TEST_FILE>      # open-loop load generator
//!         [--qps R[,R..]] [--duration-secs S] [--senders N] [--json PATH]
//!         [--amplitude A] [--offset B]     # replay A*x+B shifted series
//!                                          # (drift-sweep traffic)
//! rpm-cli patterns <MODEL>                 # prints the learned patterns
//! rpm-cli motifs <SERIES_FILE> [--window W --paa P --alpha A]
//!                                          # exploratory motifs/discords
//! rpm-cli generate <DATASET> <OUT_PREFIX>  # writes <PREFIX>_TRAIN/_TEST
//! rpm-cli obs summary <RUN.jsonl>          # stage tree + quantiles
//! rpm-cli obs diff <BASE.jsonl> <RUN.jsonl> [--tolerance 20%] [--time-gate]
//!                                          # exit 1 on regression
//! rpm-cli obs traces <ADDR>                # fetch retained request traces
//!         [--min-ms N] [--outcome ok|bad_request|shed|deadline|error]
//! rpm-cli obs drift <ADDR> [--json]        # drift verdict vs the model's
//!                                          # training reference profile
//! ```
//!
//! Files use the UCR archive format: one series per line, class label
//! first, comma- or whitespace-separated; malformed rows (bad labels or
//! values, NaN/Inf, ragged lengths) are quarantined with a summary on
//! stderr rather than failing the command. Run reports are the JSONL
//! files written via `RPM_LOG=spans,json=run.jsonl`.

use rpm::core::{
    discover_motifs, find_discords, MatchKernel, ParamSearch, RpmClassifier, RpmConfig, TrainBudget,
};
use rpm::data::registry::spec_by_name;
use rpm::data::ucr::{read_ucr_file, read_ucr_file_lenient, write_ucr, Quarantine};
use rpm::ml::error_rate;
use rpm::obs::{diff_reports, load_summary, DiffOptions};
use rpm::sax::SaxConfig;
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    rpm::obs::init_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("model") => cmd_model(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("load-gen") => cmd_load_gen(&args[1..]),
        Some("patterns") => cmd_patterns(&args[1..]),
        Some("motifs") => cmd_motifs(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("obs") => cmd_obs(&args[1..]),
        _ => {
            eprintln!(
                "usage: rpm-cli <train|classify|model|serve|load-gen|patterns|motifs|generate|obs> ..."
            );
            eprintln!("see the crate docs (src/bin/rpm-cli.rs) for full usage");
            return ExitCode::from(2);
        }
    };
    let code = match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    };
    // Stage tree to stderr + optional JSONL report when RPM_LOG is set.
    rpm::obs::finish();
    code
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Pulls `--flag value` out of the argument list. A flag given more than
/// once, or present without a value (end of args, or followed by another
/// `--flag`), is a usage error rather than a panic or silent pick.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut found: Option<String> = None;
    for (i, a) in args.iter().enumerate() {
        if a != flag {
            continue;
        }
        if found.is_some() {
            return Err(format!("{flag} given more than once"));
        }
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => found = Some(v.clone()),
            _ => return Err(format!("{flag} requires a value")),
        }
    }
    Ok(found)
}

fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn positional(args: &[String], index: usize) -> Result<&String, String> {
    args.iter()
        .enumerate()
        .filter(|(i, a)| {
            // A --flag is not positional, and neither is the value
            // following one.
            !a.starts_with("--") && (*i == 0 || !args[*i - 1].starts_with("--"))
        })
        .map(|(_, a)| a)
        .nth(index)
        .ok_or_else(|| format!("missing positional argument #{index}"))
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match flag_value(args, flag)? {
        None => Ok(None),
        Some(v) => v.parse::<T>().map(Some).map_err(|e| format!("{flag}: {e}")),
    }
}

/// Parses a tolerance given as a percentage (`20%`) or a ratio (`0.2`).
fn parse_tolerance(s: &str) -> Result<f64, String> {
    let (body, scale) = match s.strip_suffix('%') {
        Some(body) => (body, 100.0),
        None => (s, 1.0),
    };
    let v: f64 = body
        .trim()
        .parse()
        .map_err(|e| format!("--tolerance {s:?}: {e}"))?;
    let v = v / scale;
    if !(0.0..=10.0).contains(&v) {
        return Err(format!("--tolerance {s:?} out of range"));
    }
    Ok(v)
}

fn sax_from_flags(args: &[String], default_len: usize) -> Result<SaxConfig, String> {
    let window = parse_flag::<usize>(args, "--window")?.unwrap_or((default_len / 4).max(4));
    let paa = parse_flag::<usize>(args, "--paa")?.unwrap_or(4);
    let alpha = parse_flag::<usize>(args, "--alpha")?.unwrap_or(4);
    Ok(SaxConfig::new(window, paa.min(window), alpha))
}

/// Prints the lenient reader's verdict for a loaded file.
fn report_quarantine(path: &str, q: &Quarantine) {
    if q.is_clean() {
        return;
    }
    eprintln!("warning: {path}: {}", q.summary());
}

/// `--kernel batched|rolling|naive` (default batched). The rolling and
/// naive kernels exist for ablation runs and cross-checking the batched
/// pattern-set cascade; all three produce bit-identical distances.
fn parse_kernel(args: &[String]) -> Result<MatchKernel, String> {
    match flag_value(args, "--kernel")?.as_deref() {
        None | Some("batched") => Ok(MatchKernel::Batched),
        Some("rolling") => Ok(MatchKernel::Rolling),
        Some("naive") => Ok(MatchKernel::Naive),
        Some(other) => Err(format!(
            "--kernel {other:?}: expected batched, rolling, or naive"
        )),
    }
}

fn cmd_train(args: &[String]) -> CliResult {
    let train_path = positional(args, 0)?;
    let model_path = flag_value(args, "--model")?.ok_or("train requires --model <OUT>")?;
    let (train, _, quarantine) = read_ucr_file_lenient(train_path)?;
    report_quarantine(train_path, &quarantine);
    eprintln!("loaded {train}");

    let param_search = if let Some(n) = parse_flag::<usize>(args, "--direct")? {
        ParamSearch::Direct {
            max_evals: n,
            per_class: flag_present(args, "--per-class"),
        }
    } else if flag_present(args, "--window") {
        ParamSearch::Fixed(sax_from_flags(args, train.min_len())?)
    } else {
        ParamSearch::Direct {
            max_evals: 12,
            per_class: false,
        }
    };
    let budget = TrainBudget {
        wall_clock: parse_flag::<u64>(args, "--budget-secs")?.map(std::time::Duration::from_secs),
        max_evals: parse_flag::<usize>(args, "--budget-evals")?,
    };
    let config = RpmConfig {
        param_search,
        gamma: parse_flag::<f64>(args, "--gamma")?.unwrap_or(0.2),
        rotation_invariant: flag_present(args, "--rotation-invariant"),
        kernel: parse_kernel(args)?,
        budget,
        checkpoint: flag_value(args, "--checkpoint")?.map(std::path::PathBuf::from),
        ..RpmConfig::default()
    };
    let model = RpmClassifier::train(&train, &config)?;
    if model.is_degraded() {
        eprintln!(
            "warning: training budget exhausted before the parameter search \
             finished; the model uses the best parameters found so far"
        );
    }
    eprintln!("learned {} representative patterns", model.patterns().len());
    eprintln!("training cache: {}", model.cache_stats());
    model.save(std::fs::File::create(&model_path)?)?;
    eprintln!("model written to {model_path}");
    Ok(())
}

fn cmd_model(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("verify") => {
            let rest = &args[1..];
            let path = positional(rest, 0)?;
            let report = RpmClassifier::verify(std::fs::File::open(path)?)
                .map_err(|e| format!("{path}: {e}"))?;
            println!("{path}: OK (format v{})", report.version);
            for (name, bytes) in &report.sections {
                println!("  section {name:<9} {bytes} bytes, crc32 verified");
            }
            println!(
                "  {} patterns, {} classes{}",
                report.patterns,
                report.classes,
                if report.degraded {
                    ", trained under an exhausted budget"
                } else {
                    ""
                }
            );
            println!("  fingerprint {}", report.fingerprint);
            if report.profile_samples > 0 {
                println!(
                    "  drift reference profile: {} training samples",
                    report.profile_samples
                );
            } else {
                println!("  no drift reference profile (pre-profile model)");
            }
            Ok(())
        }
        _ => Err("usage: rpm-cli model verify <MODEL>".into()),
    }
}

/// `rpm-cli serve MODEL …` — bring up the classify server. Verification
/// is not optional: a model that fails its CRC check (or predates
/// checksums, absent `--allow-unverified`) never reaches the listener.
/// `rpm-cli serve reload|rollback ADDR` are thin clients for the admin
/// endpoints of an already-running server.
fn cmd_serve(args: &[String]) -> CliResult {
    match positional(args, 0).map(String::as_str) {
        Ok("reload") => return cmd_serve_reload(&args[1..]),
        Ok("rollback") => return cmd_serve_rollback(&args[1..]),
        _ => {}
    }
    let model_path = positional(args, 0)?;
    let allow_unverified = flag_present(args, "--allow-unverified");
    let (model, report) =
        rpm::serve::load_verified_path(std::path::Path::new(model_path), allow_unverified)
            .map_err(|e| format!("{model_path}: {e}"))?;
    eprintln!(
        "{model_path}: verified format v{}, {} patterns, {} classes, fingerprint {}{}",
        report.version,
        report.patterns,
        report.classes,
        report.fingerprint,
        if report.version < 2 {
            " (UNVERIFIED: v1 carries no checksums)"
        } else {
            ""
        }
    );
    rpm::obs::drift::set_model_fingerprint(Some(report.fingerprint.clone()));
    if report.profile_samples > 0 {
        eprintln!(
            "drift reference profile: {} training samples (online drift detection armed)",
            report.profile_samples
        );
    } else {
        eprintln!("model carries no drift reference profile; /debug/drift will report unavailable");
    }

    let config = rpm::serve::ServeConfig {
        addr: flag_value(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:9899".to_string()),
        workers: parse_flag::<usize>(args, "--workers")?.unwrap_or(2),
        max_batch: parse_flag::<usize>(args, "--batch-max")?.unwrap_or(32),
        batch_window: std::time::Duration::from_millis(
            parse_flag::<u64>(args, "--batch-window-ms")?.unwrap_or(2),
        ),
        queue_depth: parse_flag::<usize>(args, "--queue-depth")?.unwrap_or(1024),
        deadline: std::time::Duration::from_millis(
            parse_flag::<u64>(args, "--deadline-ms")?.unwrap_or(2000),
        ),
        parallelism: match parse_flag::<usize>(args, "--threads")?.unwrap_or(1) {
            0 | 1 => rpm::core::Parallelism::Serial,
            n => rpm::core::Parallelism::Threads(n),
        },
        limits: rpm::obs::ServeLimits {
            max_body_bytes: parse_flag::<usize>(args, "--max-body-kb")?
                .map(|kb| kb * 1024)
                .unwrap_or(rpm::obs::ServeLimits::default().max_body_bytes),
            ..rpm::obs::ServeLimits::default()
        },
        drift: drift_config_from(args)?,
        reload: {
            let defaults = rpm::serve::ReloadPolicy::default();
            rpm::serve::ReloadPolicy {
                canary_psi: parse_flag::<f64>(args, "--reload-canary")?
                    .unwrap_or(defaults.canary_psi),
                probation: parse_flag::<u64>(args, "--probation-secs")?
                    .map(std::time::Duration::from_secs)
                    .unwrap_or(defaults.probation),
                allow_unverified,
                ..defaults
            }
        },
        supervise: rpm::serve::SuperviseSettings::default(),
        model_path: Some(std::path::PathBuf::from(model_path)),
    };
    let mut server =
        rpm::serve::Server::start_verified(std::sync::Arc::new(model), &report, &config)?;
    eprintln!(
        "serving /classify, /metrics, /healthz, /admin/reload on {} \
         ({} workers, batch ≤{} series / {}ms window)",
        server.local_addr(),
        config.workers,
        config.max_batch,
        config.batch_window.as_millis()
    );

    // The serve loop is signal-driven: SIGHUP hot-reloads the model
    // file through the canary gate, SIGTERM/SIGINT break out into the
    // graceful drain below. `--duration-secs` bounds the loop for
    // smoke tests.
    rpm::serve::signals::reset();
    rpm::serve::signals::install();
    let until = parse_flag::<u64>(args, "--duration-secs")?
        .map(|secs| std::time::Instant::now() + std::time::Duration::from_secs(secs));
    loop {
        if rpm::serve::signals::shutdown_requested() {
            eprintln!("shutdown signal received; draining in-flight requests");
            break;
        }
        if rpm::serve::signals::take_reload() {
            eprintln!("SIGHUP: reloading {model_path} through the canary gate");
            match server
                .lifecycle()
                .reload_from_path(std::path::Path::new(model_path))
            {
                Ok(o) => eprintln!(
                    "reload accepted: generation {} fingerprint {}",
                    o.generation, o.fingerprint
                ),
                Err(e) => eprintln!("reload rejected ({}): {e}", e.code()),
            }
        }
        if until.is_some_and(|t| std::time::Instant::now() >= t) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    server.shutdown();
    Ok(())
}

/// `rpm-cli serve reload ADDR [--model PATH]` — ask a running server to
/// hot-reload (its own model path unless `--model` names another
/// candidate). Exits nonzero when the canary gate rejects it.
fn cmd_serve_reload(args: &[String]) -> CliResult {
    let addr = positional(args, 0)?;
    let body = match flag_value(args, "--model")? {
        Some(path) => format!("{{\"path\":\"{path}\"}}"),
        None => "{}".to_string(),
    };
    let (status, response) = http_post(addr, "/admin/reload", &body)?;
    print!("{response}");
    if status != 200 {
        return Err(format!("reload refused (HTTP {status})").into());
    }
    Ok(())
}

/// `rpm-cli serve rollback ADDR` — swap a running server back to its
/// warm previous generation.
fn cmd_serve_rollback(args: &[String]) -> CliResult {
    let addr = positional(args, 0)?;
    let (status, response) = http_post(addr, "/admin/rollback", "")?;
    print!("{response}");
    if status != 200 {
        return Err(format!("rollback refused (HTTP {status})").into());
    }
    Ok(())
}

/// Drift thresholds for `rpm-cli serve`: flags win, the `RPM_DRIFT_WARN`
/// / `RPM_DRIFT_PAGE` environment variables are the fleet-config
/// fallback, then the library defaults.
fn drift_config_from(args: &[String]) -> Result<rpm::obs::DriftConfig, String> {
    let env_threshold = |name: &str| -> Result<Option<f64>, String> {
        match std::env::var(name) {
            Ok(v) => v
                .trim()
                .parse::<f64>()
                .map(Some)
                .map_err(|e| format!("{name}={v:?}: {e}")),
            Err(_) => Ok(None),
        }
    };
    let defaults = rpm::obs::DriftConfig::default();
    Ok(rpm::obs::DriftConfig {
        warn: match parse_flag::<f64>(args, "--drift-warn")? {
            Some(v) => v,
            None => env_threshold("RPM_DRIFT_WARN")?.unwrap_or(defaults.warn),
        },
        page: match parse_flag::<f64>(args, "--drift-page")? {
            Some(v) => v,
            None => env_threshold("RPM_DRIFT_PAGE")?.unwrap_or(defaults.page),
        },
        min_samples: parse_flag::<u64>(args, "--drift-min-samples")?
            .unwrap_or(defaults.min_samples),
        ..defaults
    })
}

/// `rpm-cli load-gen ADDR TEST_FILE …` — drive a running server with
/// open-loop traffic at each requested QPS level and print the table.
/// The file's rows are replayed round-robin (optionally `A*x + B`
/// shifted), so the offered traffic carries the file's distribution.
fn cmd_load_gen(args: &[String]) -> CliResult {
    let addr: std::net::SocketAddr = positional(args, 0)?
        .parse()
        .map_err(|e| format!("bad address: {e}"))?;
    let test_path = positional(args, 1)?;
    let (test, _, quarantine) = read_ucr_file_lenient(test_path)?;
    report_quarantine(test_path, &quarantine);
    // Optional distribution shift for drift sweeps: replay `A*x + B`
    // instead of the clean series.
    let amplitude = parse_flag::<f64>(args, "--amplitude")?.unwrap_or(1.0);
    let offset = parse_flag::<f64>(args, "--offset")?.unwrap_or(0.0);
    // Every row of the file, cycled round-robin by the generator, so
    // the offered traffic replays the file's distribution rather than
    // hammering one series into a point mass the drift monitor would
    // rightly flag.
    let bodies: Vec<String> = test
        .series
        .iter()
        .map(|series| {
            let rendered: Vec<String> = series
                .iter()
                .map(|v| format!("{}", v * amplitude + offset))
                .collect();
            format!("[{}]\n", rendered.join(","))
        })
        .collect();
    if bodies.is_empty() {
        return Err("test file is empty".into());
    }

    let qps_list: Vec<f64> = match flag_value(args, "--qps")? {
        Some(spec) => spec
            .split(',')
            .map(|s| s.trim().parse::<f64>().map_err(|e| format!("--qps: {e}")))
            .collect::<Result<_, _>>()?,
        None => vec![50.0, 200.0, 800.0],
    };
    let duration =
        std::time::Duration::from_secs(parse_flag::<u64>(args, "--duration-secs")?.unwrap_or(5));
    let senders = parse_flag::<usize>(args, "--senders")?.unwrap_or(8);

    println!(
        "| run | offered qps | achieved qps | 200 | 429 | 504 | err | p50 ms | p99 ms | shed p99 ms |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    let mut json_lines = Vec::new();
    for qps in qps_list {
        let report = rpm::serve::run_load(&rpm::serve::LoadConfig {
            addr,
            qps,
            duration,
            senders,
            bodies: bodies.clone(),
        });
        let label = format!("{qps:.0}qps");
        println!("{}", report.markdown_row(&label));
        json_lines.push(report.to_json(&label));
    }
    if let Some(path) = flag_value(args, "--json")? {
        std::fs::write(&path, format!("[{}]\n", json_lines.join(",\n ")))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_classify(args: &[String]) -> CliResult {
    let model_path = positional(args, 0)?;
    let test_path = positional(args, 1)?;
    let metrics_addr = flag_value(args, "--metrics-addr")?;
    let linger = parse_flag::<u64>(args, "--metrics-linger")?.unwrap_or(0);
    let server = match &metrics_addr {
        Some(addr) => {
            if !rpm::obs::enabled() {
                // A scrape endpoint without metric recording would serve
                // an empty page; bump to Summary, keeping any JSONL path
                // RPM_LOG already configured.
                rpm::obs::ObsConfig {
                    level: rpm::obs::ObsLevel::Summary,
                    json_path: rpm::obs::json_path(),
                    http_addr: None,
                }
                .install();
            }
            let server = rpm::obs::serve(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            eprintln!("serving /metrics on {}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let model = RpmClassifier::load(std::fs::File::open(model_path)?)?;
    if model.is_degraded() {
        eprintln!("note: model was trained under an exhausted budget");
    }
    let (test, _, quarantine) = read_ucr_file_lenient(test_path)?;
    report_quarantine(test_path, &quarantine);
    let preds = model.predict_batch(&test.series);
    for p in &preds {
        println!("{p}");
    }
    eprintln!("error rate: {:.4}", error_rate(&test.labels, &preds));
    if model.usage_observations() > 0 {
        eprint!("{}", model.render_pattern_usage());
    }
    if let Some(server) = server {
        if linger > 0 {
            eprintln!(
                "metrics endpoint lingering {linger}s on {}",
                server.local_addr()
            );
            std::thread::sleep(std::time::Duration::from_secs(linger));
        }
        drop(server);
    }
    Ok(())
}

fn cmd_obs(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("summary") => {
            let rest = &args[1..];
            let path = positional(rest, 0)?;
            let summary = load_summary(path)?;
            print!("{}", summary.render());
            Ok(())
        }
        Some("traces") => {
            let rest = &args[1..];
            let addr = positional(rest, 0)?;
            let mut query = Vec::new();
            if let Some(min_ms) = parse_flag::<u64>(rest, "--min-ms")? {
                query.push(format!("min_ms={min_ms}"));
            }
            if let Some(outcome) = flag_value(rest, "--outcome")? {
                query.push(format!("outcome={outcome}"));
            }
            let path = if query.is_empty() {
                "/debug/traces".to_string()
            } else {
                format!("/debug/traces?{}", query.join("&"))
            };
            print!("{}", http_get(addr, &path)?);
            Ok(())
        }
        Some("drift") => {
            let rest = &args[1..];
            let addr = positional(rest, 0)?;
            let body = http_get(addr, "/debug/drift")?;
            if flag_present(rest, "--json") {
                println!("{}", body.trim_end());
            } else {
                print!("{}", render_drift(&body)?);
            }
            Ok(())
        }
        Some("diff") => {
            let rest = &args[1..];
            let baseline_path = positional(rest, 0)?;
            let current_path = positional(rest, 1)?;
            let tolerance = match flag_value(rest, "--tolerance")? {
                Some(t) => parse_tolerance(&t)?,
                None => 0.0,
            };
            let opts = DiffOptions {
                tolerance,
                time_gate: flag_present(rest, "--time-gate"),
            };
            let baseline = load_summary(baseline_path)?;
            let current = load_summary(current_path)?;
            let diff = diff_reports(&baseline, &current, &opts);
            print!("{}", diff.render());
            if diff.regressions > 0 {
                return Err(format!(
                    "{} regression(s) in {current_path} against {baseline_path}",
                    diff.regressions
                )
                .into());
            }
            Ok(())
        }
        _ => Err(
            "usage: rpm-cli obs <summary RUN.jsonl | diff BASELINE.jsonl RUN.jsonl \
                  [--tolerance 20%] [--time-gate] | traces ADDR [--min-ms N] \
                  [--outcome ok|bad_request|shed|deadline|error] | drift ADDR [--json]>"
                .into(),
        ),
    }
}

/// Pulls a `"key":"value"` string field out of a flat JSON object.
fn json_string(json: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = json.find(&pat)? + pat.len();
    json[at..].split('"').next().map(str::to_string)
}

/// Pulls a `"key":<number>` field out of a flat JSON object.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders the `/debug/drift` JSON as the human-facing drift table.
fn render_drift(body: &str) -> Result<String, Box<dyn std::error::Error>> {
    let status = json_string(body, "status").ok_or("malformed drift report (no status)")?;
    let mut out = format!("drift status: {status}\n");
    if status == "unavailable" {
        out.push_str("the served model carries no training reference profile\n");
        return Ok(out);
    }
    let live = json_number(body, "live_samples").unwrap_or(0.0);
    let reference = json_number(body, "reference_samples").unwrap_or(0.0);
    let window = json_number(body, "window_secs").unwrap_or(0.0);
    let warn = json_number(body, "warn").unwrap_or(0.0);
    let page = json_number(body, "page").unwrap_or(0.0);
    let _ = writeln!(
        out,
        "live window: {live:.0} samples over {window:.0}s (reference {reference:.0}); \
         thresholds warn ≥ {warn} / page ≥ {page}",
    );
    let _ = writeln!(out, "{:<16} {:>9} {:>9}  verdict", "metric", "psi", "ks");
    for block in body.split("{\"metric\":\"").skip(1) {
        let seg = &block[..block.find('}').unwrap_or(block.len())];
        let name = seg.split('"').next().unwrap_or("?");
        let psi = json_number(seg, "psi").unwrap_or(f64::NAN);
        let ks = json_number(seg, "ks");
        let verdict = json_string(seg, "verdict").unwrap_or_else(|| "?".to_string());
        let ks_cell = match ks {
            Some(v) => format!("{v:>9.4}"),
            None => format!("{:>9}", "-"),
        };
        let _ = writeln!(out, "{name:<16} {psi:>9.4} {ks_cell}  {verdict}");
    }
    Ok(out)
}

/// A one-shot HTTP/1.0 GET against a serving endpoint (the flight
/// recorder's `/debug/traces`), returning the body. Std-only — no HTTP
/// client dependency for a line-oriented debug fetch.
fn http_get(addr: &str, path: &str) -> Result<String, Box<dyn std::error::Error>> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status_line = head.lines().next().unwrap_or_default();
    if !status_line.contains(" 200 ") && !status_line.ends_with(" 200") {
        return Err(format!("{addr}{path}: {status_line}").into());
    }
    Ok(body.to_string())
}

/// One-shot HTTP/1.0 POST; returns (status, body) so admin clients can
/// surface `409 Conflict` bodies instead of erroring on the transport.
fn http_post(
    addr: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), Box<dyn std::error::Error>> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write!(
        stream,
        "POST {path} HTTP/1.0\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status_line = head.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line}"))?;
    Ok((status, body.to_string()))
}

fn cmd_patterns(args: &[String]) -> CliResult {
    let model_path = positional(args, 0)?;
    let model = RpmClassifier::load(std::fs::File::open(model_path)?)?;
    println!("class,length,frequency,coverage,window,paa,alphabet");
    for p in model.patterns() {
        println!(
            "{},{},{},{},{},{},{}",
            p.class,
            p.values.len(),
            p.frequency,
            p.coverage,
            p.sax.window,
            p.sax.paa_size,
            p.sax.alphabet
        );
    }
    Ok(())
}

fn cmd_motifs(args: &[String]) -> CliResult {
    let series_path = positional(args, 0)?;
    let (data, _) = read_ucr_file(series_path)?;
    let series = data.series.first().ok_or("series file is empty")?;
    let sax = sax_from_flags(args, series.len())?;
    let motifs = discover_motifs(series, &sax);
    println!("top motifs (count, word length, first occurrences):");
    for m in motifs.iter().take(10) {
        let occ: Vec<String> = m
            .occurrences
            .iter()
            .take(5)
            .map(|(s, e)| format!("[{s},{e})"))
            .collect();
        println!(
            "  x{:<4} {:>3} words  {}",
            m.count(),
            m.rule_words,
            occ.join(" ")
        );
    }
    let discords = find_discords(series, &sax, 3);
    println!("top discords (position, length, coverage):");
    for d in discords {
        println!(
            "  @{:<6} len {:<5} coverage {:.2}",
            d.position, d.length, d.coverage
        );
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> CliResult {
    let name = positional(args, 0)?;
    let prefix = positional(args, 1)?;
    let spec = spec_by_name(name).ok_or_else(|| {
        let names: Vec<&str> = rpm::data::suite().iter().map(|s| s.name).collect();
        format!("unknown dataset {name:?}; available: {}", names.join(", "))
    })?;
    let seed = parse_flag::<u64>(args, "--seed")?.unwrap_or(2016);
    let (train, test) = rpm::data::generate(&spec, seed);
    write_ucr(&train, std::fs::File::create(format!("{prefix}_TRAIN"))?)?;
    write_ucr(&test, std::fs::File::create(format!("{prefix}_TEST"))?)?;
    eprintln!(
        "wrote {prefix}_TRAIN ({}) and {prefix}_TEST ({})",
        train.len(),
        test.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_value_extracts_and_errors_on_malformed_usage() {
        let ok = argv(&["train", "file", "--model", "out.rpm"]);
        assert_eq!(
            flag_value(&ok, "--model").unwrap().as_deref(),
            Some("out.rpm")
        );
        assert_eq!(flag_value(&ok, "--gamma").unwrap(), None);

        // Flag at the end with no value.
        let dangling = argv(&["train", "file", "--model"]);
        let err = flag_value(&dangling, "--model").unwrap_err();
        assert!(err.contains("requires a value"), "{err}");

        // Flag followed by another flag instead of a value.
        let eaten = argv(&["train", "file", "--model", "--gamma", "0.2"]);
        let err = flag_value(&eaten, "--model").unwrap_err();
        assert!(err.contains("requires a value"), "{err}");

        // Repeated flag.
        let twice = argv(&["--model", "a", "--model", "b"]);
        let err = flag_value(&twice, "--model").unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn positional_skips_flags_and_their_values() {
        let args = argv(&["model.rpm", "--tolerance", "20%", "test.ucr"]);
        assert_eq!(positional(&args, 0).unwrap(), "model.rpm");
        assert_eq!(positional(&args, 1).unwrap(), "test.ucr");
        assert!(positional(&args, 2).is_err());
    }

    #[test]
    fn positional_handles_repeated_values() {
        // The same string as a flag value and a positional must not
        // confuse the index-based scan.
        let args = argv(&["--model", "x", "x"]);
        assert_eq!(positional(&args, 0).unwrap(), "x");
        assert!(positional(&args, 1).is_err());
    }

    #[test]
    fn kernel_flag_parses_all_kernels_and_rejects_junk() {
        assert_eq!(parse_kernel(&argv(&[])).unwrap(), MatchKernel::Batched);
        assert_eq!(
            parse_kernel(&argv(&["--kernel", "batched"])).unwrap(),
            MatchKernel::Batched
        );
        assert_eq!(
            parse_kernel(&argv(&["--kernel", "rolling"])).unwrap(),
            MatchKernel::Rolling
        );
        assert_eq!(
            parse_kernel(&argv(&["--kernel", "naive"])).unwrap(),
            MatchKernel::Naive
        );
        assert!(parse_kernel(&argv(&["--kernel", "fast"])).is_err());
    }

    #[test]
    fn drift_config_flags_override_defaults() {
        let defaults = rpm::obs::DriftConfig::default();
        let none = drift_config_from(&argv(&["serve", "m.rpm"])).unwrap();
        assert_eq!(none.warn, defaults.warn);
        assert_eq!(none.page, defaults.page);
        let set = drift_config_from(&argv(&[
            "serve",
            "m.rpm",
            "--drift-warn",
            "0.1",
            "--drift-page",
            "0.3",
            "--drift-min-samples",
            "7",
        ]))
        .unwrap();
        assert_eq!(set.warn, 0.1);
        assert_eq!(set.page, 0.3);
        assert_eq!(set.min_samples, 7);
    }

    #[test]
    fn drift_report_renders_as_a_table() {
        let body = "{\"status\":\"warn\",\"live_samples\":120,\"reference_samples\":30,\
                    \"window_secs\":240,\"epoch_secs\":30,\"epochs\":8,\"warn\":0.200000,\
                    \"page\":0.500000,\"metrics\":[\
                    {\"metric\":\"match_distance\",\"psi\":0.312000,\"ks\":0.140000,\"verdict\":\"warn\"},\
                    {\"metric\":\"class_mix\",\"psi\":0.010000,\"ks\":null,\"verdict\":\"ok\"}]}";
        let table = render_drift(body).unwrap();
        assert!(table.contains("drift status: warn"), "{table}");
        assert!(table.contains("match_distance"), "{table}");
        assert!(table.contains("0.3120"), "{table}");
        assert!(table.contains("class_mix"), "{table}");
        // Categorical class mix has no KS column value.
        let mix_line = table.lines().find(|l| l.contains("class_mix")).unwrap();
        assert!(mix_line.contains('-'), "{mix_line}");

        let off = render_drift("{\"status\":\"unavailable\",\"metrics\":[]}").unwrap();
        assert!(off.contains("unavailable"), "{off}");
        assert!(render_drift("{}").is_err());
    }

    #[test]
    fn tolerance_accepts_percent_and_ratio() {
        assert!((parse_tolerance("20%").unwrap() - 0.2).abs() < 1e-12);
        assert!((parse_tolerance("0.2").unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(parse_tolerance("0").unwrap(), 0.0);
        assert!(parse_tolerance("pct").is_err());
        assert!(parse_tolerance("-5%").is_err());
    }
}
